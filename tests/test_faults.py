"""Fault injection (repro.faults): spec parsing, scheduled failures,
reroute in both engines, pool-safe packet drops, and determinism.

The subsystem's contracts, in the order the classes test them: the
``faults`` spec field has a strict canonical form (additive — fault-free
specs hash exactly as before); scheduled link/switch failures reroute
live flows onto surviving paths in the packet AND fluid engines;
packets in flight across a failed link are released back into the
:class:`~repro.net.pool.PacketPool` (the RPL001 lifecycle contract
extends to the fault drop path); loss rules and the ``random_graph``
topology are seed-deterministic.
"""

import pytest

from repro.campaign.engines import run_flow_level, run_packet_level
from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.errors import CampaignError, FaultError, TopologyError
from repro.faults import (
    FaultEvent,
    LossRule,
    canonical_faults,
    events_from,
    legacy_loss_rule,
    loss_rules_from,
)
from repro.topology.fattree import FatTree
from repro.topology.random_graph import RandomGraph
from repro.topology.single_bottleneck import SingleBottleneck
from repro.units import KBYTE
from repro.workload.flow import FlowSpec

LINK_DOWN = {"events": [
    {"time": 0.002, "action": "link_down", "a": "agg0_0", "b": "core0_0"},
]}


def _fattree_flows(n=8, size=200 * KBYTE):
    """A deterministic half-permutation on the 16-server fat-tree."""
    topo = FatTree.for_servers(16)
    hosts = topo.hosts
    flows = [
        FlowSpec(fid=i, src=hosts[i], dst=hosts[(i + 5) % len(hosts)],
                 size_bytes=size, arrival=0.0)
        for i in range(n)
    ]
    return topo, flows


# -- canonical form -----------------------------------------------------------------


class TestFaultSpec:
    def test_events_are_time_sorted_and_typed(self):
        faults = canonical_faults({"events": [
            {"time": 0.2, "action": "switch_down", "node": "sw1"},
            {"time": 0.1, "action": "link_down", "a": "x", "b": "y"},
        ]})
        events = events_from(faults)
        assert [e.time for e in events] == [0.1, 0.2]
        assert events[0] == FaultEvent(0.1, "link_down", "x", "y")
        assert events[0].is_link and not events[1].is_link

    def test_loss_rule_defaults_resolve_at_run_time(self):
        faults = canonical_faults(
            {"loss": [{"src": "sw*", "dst": "*", "rate": 0.01}]}
        )
        # omitted seed stays omitted in the canonical form (it would
        # otherwise bake one spec.seed into every sweep cell's hash) ...
        assert "seed" not in faults["loss"][0]
        # ... and resolves to the spec seed when rules are built
        (rule,) = loss_rules_from(faults, default_seed=7)
        assert rule == LossRule("sw*", "*", 0.01, 7, both_directions=True)

    def test_legacy_tuple_maps_to_exact_rule(self):
        rule = legacy_loss_rule(("sw0", "recv", 0.02, 9))
        assert rule == LossRule("sw0", "recv", 0.02, 9,
                                both_directions=True)

    @pytest.mark.parametrize("bad", [
        {},  # empty faults mapping is a spec error, not a no-op
        {"events": []},
        {"events": [{"time": 0.1, "action": "nuke", "a": "x", "b": "y"}]},
        {"events": [{"time": 0.1, "action": "link_down", "a": "x"}]},
        {"events": [{"time": 0.1, "action": "link_down",
                     "a": "x", "b": "x"}]},
        {"events": [{"time": -0.1, "action": "switch_down", "node": "s"}]},
        {"events": [{"time": 0.1, "action": "switch_down", "node": "s",
                     "extra": 1}]},
        {"loss": [{"src": "a", "dst": "b", "rate": 1.5}]},
        {"loss": [{"src": "a", "rate": 0.1}]},
        {"unknown_section": []},
    ])
    def test_malformed_faults_are_rejected(self, bad):
        with pytest.raises((FaultError, CampaignError)):
            canonical_faults(bad)


class TestSpecIntegration:
    def _spec(self, **kw):
        return ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TopologySpec("fattree", {"n_servers": 16}),
            workload=WorkloadSpec("fig8.permutation",
                                  {"flows_per_server": 1}),
            seed=1, sim_deadline=4.0, **kw,
        )

    def test_fault_free_hashes_are_unchanged(self):
        # additive canonicalization: no faults -> no "faults" key, so
        # every pre-subsystem stored result key still resolves
        assert "faults" not in self._spec().canonical()
        assert self._spec().key != self._spec(faults=LINK_DOWN).key

    def test_faults_roundtrip_through_from_dict(self):
        spec = self._spec(faults=LINK_DOWN)
        again = ScenarioSpec.from_dict(spec.canonical())
        assert again.key == spec.key
        assert again.fault_events() == spec.fault_events()

    def test_loss_rules_only_exist_in_the_packet_engine(self):
        with pytest.raises(CampaignError, match="packet"):
            self._spec(engine="flow",
                       faults={"loss": [{"src": "a", "dst": "b",
                                         "rate": 0.01}]})
        # scheduled events are engine-agnostic
        assert self._spec(engine="flow", faults=LINK_DOWN).fault_events()


# -- packet engine ------------------------------------------------------------------


class TestPacketFaults:
    def test_link_down_reroutes_live_flows(self):
        topo, flows = _fattree_flows()
        events = events_from(canonical_faults(LINK_DOWN))
        collector = run_packet_level(topo, "PDQ(Full)", flows,
                                     sim_deadline=4.0, faults=events)
        assert collector.completed_count() == len(flows)
        assert collector.stats["faults.events_applied"] == 1
        assert collector.stats["faults.reroutes"] > 0

    def test_fault_counters_absent_without_faults(self):
        topo, flows = _fattree_flows(n=2)
        collector = run_packet_level(topo, "PDQ(Full)", flows,
                                     sim_deadline=4.0)
        assert not any(k.startswith("faults.") for k in collector.stats)

    def test_unknown_link_name_is_a_fault_error(self):
        topo, flows = _fattree_flows(n=2)
        events = (FaultEvent(0.001, "link_down", "agg0_0", "nope"),)
        with pytest.raises(FaultError, match="nope"):
            run_packet_level(topo, "PDQ(Full)", flows,
                             sim_deadline=4.0, faults=events)

    def test_severed_flows_are_terminated_not_hung(self):
        # the bottleneck fan-in has exactly one path per sender: cutting
        # send0's access link strands that flow with no reroute
        topo = SingleBottleneck(4)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=400 * KBYTE, arrival=0.0)
                 for i in range(4)]
        events = (FaultEvent(0.0005, "link_down", "send0", "sw0"),)
        collector = run_packet_level(topo, "PDQ(Full)", flows,
                                     sim_deadline=4.0, faults=events)
        assert collector.stats["faults.flows_rejected"] == 1
        assert collector.completed_count() == 3

    def test_in_flight_drops_release_into_the_pool(self):
        from repro.net.network import Network
        from repro.net.pool import PacketPool
        from repro.faults.controller import FaultController
        from repro.campaign.engines import make_stack

        topo, flows = _fattree_flows()
        net = Network(topo, make_stack("PDQ(Full)"))
        pool = PacketPool(debug=True)
        net.pool = pool
        for node in net.nodes:
            node.pool = pool
        for link in net.links:
            link.pool = pool
        controller = FaultController(
            net, events_from(canonical_faults(LINK_DOWN)))
        controller.start()
        net.launch(flows)
        net.run_until_quiet(deadline=4.0)
        # run_until_quiet stops at the last flow's resolution with ACK/
        # TERM trailers still in flight; drain them before the audit
        net.sim.run(until=4.0)
        assert controller.packets_dropped() > 0
        pool.assert_no_leaks()


# -- fluid engine -------------------------------------------------------------------


class TestFluidFaults:
    def test_link_down_reroutes_live_flows(self):
        topo, flows = _fattree_flows()
        events = events_from(canonical_faults(LINK_DOWN))
        collector = run_flow_level(topo, "PDQ(Full)", flows,
                                   sim_deadline=4.0, faults=events)
        assert collector.completed_count() == len(flows)
        assert collector.stats["faults.events_applied"] == 1
        assert collector.stats["faults.reroutes"] > 0

    def test_unknown_switch_name_is_a_fault_error(self):
        topo, flows = _fattree_flows(n=2)
        events = (FaultEvent(0.001, "switch_down", "sw99"),)
        with pytest.raises(FaultError, match="sw99"):
            run_flow_level(topo, "PDQ(Full)", flows,
                           sim_deadline=4.0, faults=events)

    def test_severed_flows_are_terminated_not_hung(self):
        topo = SingleBottleneck(4)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=400 * KBYTE, arrival=0.0)
                 for i in range(4)]
        events = (FaultEvent(0.0005, "link_down", "send0", "sw0"),)
        collector = run_flow_level(topo, "PDQ(Full)", flows,
                                   sim_deadline=4.0, faults=events)
        assert collector.stats["faults.flows_rejected"] == 1
        assert collector.completed_count() == 3

    def test_restored_link_admits_later_arrivals(self):
        # flap send0's only link: a flow arriving during the outage is
        # rejected, one arriving after link_up completes normally
        topo = SingleBottleneck(2)
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv",
                     size_bytes=100 * KBYTE, arrival=0.002),
            FlowSpec(fid=1, src="send0", dst="recv",
                     size_bytes=100 * KBYTE, arrival=0.02),
        ]
        events = (FaultEvent(0.001, "link_down", "send0", "sw0"),
                  FaultEvent(0.01, "link_up", "send0", "sw0"))
        collector = run_flow_level(topo, "PDQ(Full)", flows,
                                   sim_deadline=4.0, faults=events)
        assert collector.completed_count() == 1
        assert collector.stats["faults.flows_rejected"] == 1


# -- determinism --------------------------------------------------------------------


class TestDeterminism:
    def _run(self, loss):
        topo = SingleBottleneck(4)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=200 * KBYTE, arrival=0.0)
                 for i in range(4)]
        return run_packet_level(topo, "TCP", flows, sim_deadline=4.0,
                                loss=loss)

    def test_loss_rules_are_seed_deterministic(self):
        rule = (LossRule("sw0", "*", 0.02, 5),)
        a, b = self._run(rule), self._run(rule)
        assert a.stats["net.wire_losses"] > 0
        assert a.to_dict() == b.to_dict()

    def test_exact_rule_matches_legacy_tuple_bit_for_bit(self):
        legacy = self._run(("send0", "sw0", 0.02, 5))
        rule = self._run((LossRule("send0", "sw0", 0.02, 5),))
        assert legacy.to_dict() == rule.to_dict()

    def test_zero_match_rule_is_an_error(self):
        with pytest.raises(FaultError, match="match"):
            self._run((LossRule("no_such_node", "*", 0.01, 5),))

    def test_random_graph_is_seed_deterministic(self):
        def edges(seed):
            return sorted(RandomGraph(n_switches=10, seed=seed).graph.edges())

        assert edges(3) == edges(3)
        assert edges(3) != edges(4)

    def test_random_graph_validates_parameters(self):
        with pytest.raises(TopologyError):
            RandomGraph(n_switches=1)
        with pytest.raises(TopologyError):
            RandomGraph(n_switches=4, hosts_per_switch=0)
