"""Tests for the switch-side flow list (§3.3.1)."""

from hypothesis import given, strategies as st

from repro.core.comparator import FlowComparator, criticality_key
from repro.core.config import PdqConfig
from repro.core.flowlist import PdqFlowList


def _list(**cfg) -> PdqFlowList:
    return PdqFlowList(PdqConfig.full(**cfg), FlowComparator())


def _key(fid, tx=1.0, deadline=None):
    return criticality_key(fid, deadline, tx)


class TestAdmission:
    def test_admit_and_get(self):
        flows = _list()
        entry = flows.admit(1, now=0.0, key=_key(1))
        assert entry is not None
        assert flows.get(1) is entry
        assert len(flows) == 1

    def test_sorted_by_criticality(self):
        flows = _list()
        flows.admit(1, 0.0, _key(1, tx=3.0))
        flows.admit(2, 0.0, _key(2, tx=1.0))
        flows.admit(3, 0.0, _key(3, tx=2.0))
        assert [e.fid for e in flows] == [2, 3, 1]
        assert flows.index_of(2) == 0

    def test_full_list_rejects_less_critical(self):
        flows = _list(min_list_capacity=2, hard_flow_limit=2)
        flows.admit(1, 0.0, _key(1, tx=1.0))
        flows.admit(2, 0.0, _key(2, tx=2.0))
        assert flows.admit(3, 0.0, _key(3, tx=5.0)) is None
        assert len(flows) == 2

    def test_full_list_evicts_least_critical_for_more_critical(self):
        flows = _list(min_list_capacity=2, hard_flow_limit=2)
        flows.admit(1, 0.0, _key(1, tx=1.0))
        flows.admit(2, 0.0, _key(2, tx=2.0))
        entry = flows.admit(3, 0.0, _key(3, tx=0.5))
        assert entry is not None
        assert flows.get(2) is None  # evicted
        assert [e.fid for e in flows] == [3, 1]
        assert flows.evictions == 1

    def test_capacity_grows_with_kappa(self):
        flows = _list(min_list_capacity=2, capacity_factor=2,
                      hard_flow_limit=64)
        a = flows.admit(1, 0.0, _key(1, tx=1.0))
        b = flows.admit(2, 0.0, _key(2, tx=2.0))
        assert flows.capacity == 2
        a.rate = 1e9
        b.rate = 1e9
        assert flows.kappa == 2
        assert flows.capacity == 4

    def test_hard_limit_caps_capacity(self):
        flows = _list(min_list_capacity=2, hard_flow_limit=3)
        entries = [flows.admit(i, 0.0, _key(i, tx=float(i + 1)))
                   for i in range(3)]
        for e in entries:
            if e:
                e.rate = 1e9
        assert flows.capacity == 3


class TestMutation:
    def test_reposition_after_key_change(self):
        flows = _list()
        a = flows.admit(1, 0.0, _key(1, tx=5.0))
        flows.admit(2, 0.0, _key(2, tx=1.0))
        index = flows.reposition(a, _key(1, tx=0.5))
        assert index == 0
        assert [e.fid for e in flows] == [1, 2]

    def test_remove(self):
        flows = _list()
        flows.admit(1, 0.0, _key(1))
        assert flows.remove(1)
        assert not flows.remove(1)
        assert flows.get(1) is None

    def test_purge_expired(self):
        flows = _list()
        flows.admit(1, now=0.0, key=_key(1))
        entry = flows.admit(2, now=0.0, key=_key(2, tx=2.0))
        entry.last_update = 10.0
        stale = flows.purge_expired(now=10.0, horizon=5.0)
        assert stale == [1]
        assert flows.get(2) is not None

    def test_sending_definition(self):
        flows = _list()
        entry = flows.admit(1, 0.0, _key(1))
        assert not entry.sending  # rate 0
        entry.rate = 1e9
        assert entry.sending
        entry.pauseby = 42
        assert not entry.sending

    @given(st.lists(st.tuples(st.integers(0, 100),
                              st.floats(0.001, 100.0)),
                    min_size=1, max_size=40, unique_by=lambda t: t[0]))
    def test_property_always_sorted(self, flows_data):
        flows = _list(hard_flow_limit=64, min_list_capacity=64)
        for fid, tx in flows_data:
            flows.admit(fid, 0.0, _key(fid, tx=tx))
        keys = [e.key for e in flows]
        assert keys == sorted(keys)
