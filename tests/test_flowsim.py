"""Tests for the flow-level (fluid) simulator and its rate models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowsim import D3Model, FlowLevelSimulation, PdqModel, RcpModel
from repro.flowsim.progress import FlowProgress
from repro.flowsim.rcp_model import max_min_rates
from repro.topology import SingleBottleneck, SingleRootedTree
from repro.units import GBPS, KBYTE, MBYTE, MSEC
from repro.workload.flow import FlowSpec


def _progress(fid, path, max_rate=1 * GBPS, size=100 * KBYTE):
    spec = FlowSpec(fid=fid, src="a", dst="b", size_bytes=size)
    return FlowProgress(spec, path, max_rate, rtt=150e-6,
                        wire_size=float(size), transfer_start=0.0)


class TestMaxMinRates:
    def test_single_bottleneck_even_split(self):
        caps = {("a", "b"): 1 * GBPS}
        flows = [_progress(i, [("a", "b")]) for i in range(4)]
        rates = max_min_rates(flows, caps)
        for rate in rates.values():
            assert rate == pytest.approx(0.25 * GBPS)

    def test_respects_flow_max_rate(self):
        caps = {("a", "b"): 1 * GBPS}
        flows = [
            _progress(0, [("a", "b")], max_rate=0.1 * GBPS),
            _progress(1, [("a", "b")]),
        ]
        rates = max_min_rates(flows, caps)
        assert rates[0] == pytest.approx(0.1 * GBPS)
        assert rates[1] == pytest.approx(0.9 * GBPS)

    def test_multi_bottleneck(self):
        # classic: flow A on links 1+2, flow B on link 1, flow C on link 2
        caps = {("x", "y"): 1 * GBPS, ("y", "z"): 1 * GBPS}
        a = _progress(0, [("x", "y"), ("y", "z")])
        b = _progress(1, [("x", "y")])
        c = _progress(2, [("y", "z")])
        rates = max_min_rates([a, b, c], caps)
        assert rates[0] == pytest.approx(0.5 * GBPS, rel=1e-6)
        assert rates[1] == pytest.approx(0.5 * GBPS, rel=1e-6)
        assert rates[2] == pytest.approx(0.5 * GBPS, rel=1e-6)

    @given(st.lists(st.floats(min_value=1e6, max_value=1e9), min_size=1,
                    max_size=12))
    @settings(max_examples=50)
    def test_property_no_link_oversubscribed(self, max_rates):
        caps = {("a", "b"): 1 * GBPS, ("b", "c"): 0.5 * GBPS}
        flows = [
            _progress(i, [("a", "b"), ("b", "c")], max_rate=m)
            for i, m in enumerate(max_rates)
        ]
        rates = max_min_rates(flows, caps)
        assert sum(rates.values()) <= 0.5 * GBPS * (1 + 1e-6)
        for i, m in enumerate(max_rates):
            assert rates[i] <= m * (1 + 1e-9)


class TestPdqModel:
    def test_most_critical_gets_full_rate(self):
        caps = {("a", "b"): 1 * GBPS}
        small = _progress(0, [("a", "b")], size=10 * KBYTE)
        big = _progress(1, [("a", "b")], size=1 * MBYTE)
        rates = PdqModel().allocate([big, small], caps, now=0.0)
        assert rates[0] == pytest.approx(1 * GBPS)
        assert rates[1] == 0.0

    def test_deadline_beats_size(self):
        caps = {("a", "b"): 1 * GBPS}
        sized = _progress(0, [("a", "b")], size=10 * KBYTE)
        urgent_spec = FlowSpec(fid=1, src="a", dst="b",
                               size_bytes=1 * MBYTE, deadline=5 * MSEC)
        urgent = FlowProgress(urgent_spec, [("a", "b")], 1 * GBPS, 150e-6,
                              float(1 * MBYTE), 0.0)
        rates = PdqModel().allocate([sized, urgent], caps, now=0.0)
        assert rates[1] == pytest.approx(1 * GBPS)
        assert rates[0] == 0.0

    def test_crumb_rule_pauses_sliver_grants(self):
        caps = {("a", "b"): 1 * GBPS}
        a = _progress(0, [("a", "b")], size=10 * KBYTE,
                      max_rate=0.99 * GBPS)
        b = _progress(1, [("a", "b")], size=1 * MBYTE)
        rates = PdqModel().allocate([a, b], caps, now=0.0)
        assert rates[1] == 0.0  # 1% residual is a crumb, pause

    def test_et_terminates_hopeless_deadline_flow(self):
        caps = {("a", "b"): 1 * GBPS}
        spec = FlowSpec(fid=0, src="a", dst="b", size_bytes=10 * MBYTE,
                        deadline=1 * MSEC)
        flow = FlowProgress(spec, [("a", "b")], 1 * GBPS, 150e-6,
                            float(10 * MBYTE), 0.0)
        model = PdqModel()
        rates = model.allocate([flow], caps, now=0.0)
        doomed = model.terminations([flow], rates, now=0.0)
        assert doomed and doomed[0][0] == 0

    def test_aging_promotes_long_waiting_flow(self):
        config_rates = []
        caps = {("a", "b"): 1 * GBPS}
        for aging in (0.0, 5.0):
            small = _progress(0, [("a", "b")], size=10 * KBYTE)
            big = _progress(1, [("a", "b")], size=1 * MBYTE)
            big.waited = 1.0  # has waited 10 aging units
            model = PdqModel(PdqModel().config.with_(aging_rate=aging))
            rates = model.allocate([small, big], caps, now=0.0)
            config_rates.append(rates)
        assert config_rates[0][0] > 0  # no aging: small flow wins
        assert config_rates[1][1] > 0  # aging: the starved big flow wins


class TestD3Model:
    def test_matches_rcp_without_deadlines(self):
        caps = {("a", "b"): 1 * GBPS}
        flows = [_progress(i, [("a", "b")]) for i in range(3)]
        d3 = D3Model().allocate(flows, caps, now=0.0)
        rcp = RcpModel().allocate(flows, caps, now=0.0)
        for fid in d3:
            assert d3[fid] == pytest.approx(rcp[fid])

    def test_arrival_order_priority(self):
        caps = {("a", "b"): 1 * GBPS}
        early = FlowSpec(fid=0, src="a", dst="b", size_bytes=2 * MBYTE,
                         deadline=20 * MSEC, arrival=0.0)
        late = FlowSpec(fid=1, src="a", dst="b", size_bytes=2 * MBYTE,
                        deadline=18 * MSEC, arrival=1 * MSEC)
        flows = [
            FlowProgress(s, [("a", "b")], 1 * GBPS, 150e-6,
                         float(s.size_bytes), s.arrival)
            for s in (early, late)
        ]
        rates = D3Model().allocate(flows, caps, now=2 * MSEC)
        # the earlier arrival reserves first even though the later flow has
        # the tighter deadline (Fig 1's criticism)
        assert rates[0] > rates[1]

    def test_quenching(self):
        spec = FlowSpec(fid=0, src="a", dst="b", size_bytes=1 * MBYTE,
                        deadline=1 * MSEC)
        flow = FlowProgress(spec, [("a", "b")], 1 * GBPS, 150e-6,
                            float(1 * MBYTE), 0.0)
        model = D3Model()
        doomed = model.terminations([flow], {}, now=2 * MSEC)
        assert doomed and "quenching" in doomed[0][1]


class TestFlowLevelEngine:
    def test_serial_sjf_completions(self):
        topo = SingleBottleneck(5)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE + i * 1000) for i in range(5)]
        metrics = FlowLevelSimulation(topo, PdqModel()).run(flows)
        fcts = sorted(r.fct for r in metrics.all_records())
        # ~8.4ms serial spacing (wire bytes at 1Gbps)
        for i, fct in enumerate(fcts):
            assert fct == pytest.approx(0.0084 * (i + 1), rel=0.05)

    def test_rcp_flows_finish_together(self):
        topo = SingleBottleneck(3)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE) for i in range(3)]
        metrics = FlowLevelSimulation(topo, RcpModel()).run(flows)
        fcts = [r.fct for r in metrics.all_records()]
        assert max(fcts) - min(fcts) < 1e-3

    def test_staggered_arrivals(self):
        topo = SingleBottleneck(2)
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=1 * MBYTE),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE,
                     arrival=2 * MSEC),
        ]
        metrics = FlowLevelSimulation(topo, PdqModel()).run(flows)
        # the late short flow preempts: finishes ~1ms after its arrival
        assert metrics.record(1).fct < 2 * MSEC

    def test_deadline_metrics(self):
        topo = SingleBottleneck(2)
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=100 * KBYTE,
                     deadline=20 * MSEC),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=10 * MBYTE,
                     deadline=5 * MSEC),  # hopeless
        ]
        metrics = FlowLevelSimulation(topo, PdqModel()).run(flows)
        assert metrics.record(0).met_deadline
        assert metrics.record(1).terminated
        assert metrics.application_throughput() == 0.5

    def test_header_overhead_modeled(self):
        topo = SingleBottleneck(1)
        flows = [FlowSpec(fid=0, src="send0", dst="recv",
                          size_bytes=1 * MBYTE)]
        fct_56 = FlowLevelSimulation(topo, PdqModel(), header_bytes=56).run(
            flows).record(0).fct
        fct_0 = FlowLevelSimulation(topo, PdqModel(), header_bytes=1).run(
            flows).record(0).fct
        assert fct_56 > fct_0

    def test_multihop_tree(self):
        topo = SingleRootedTree()
        flows = [FlowSpec(fid=i, src=f"h{i}", dst=f"h{(i + 3) % 12}",
                          size_bytes=100 * KBYTE) for i in range(12)]
        metrics = FlowLevelSimulation(topo, PdqModel()).run(flows)
        assert len(metrics.completed_records()) == 12


class TestCrossValidation:
    """Fig 8's packet-vs-flow-level agreement on small scenarios."""

    def test_pdq_serial_schedule_agrees(self):
        from repro.core.stack import PdqStack
        from repro.net.network import Network

        topo = SingleBottleneck(5)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE + i * 1000) for i in range(5)]
        net = Network(topo, PdqStack())
        net.launch(flows)
        net.run_until_quiet(deadline=0.2)
        pkt = net.metrics.mean_fct()
        flow = FlowLevelSimulation(
            SingleBottleneck(5), PdqModel()
        ).run(flows).mean_fct()
        assert pkt == pytest.approx(flow, rel=0.10)

    def test_rcp_fair_share_agrees(self):
        from repro.net.network import Network
        from repro.transport import RcpStack

        topo = SingleBottleneck(3)
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE) for i in range(3)]
        net = Network(topo, RcpStack())
        net.launch(flows)
        net.run_until_quiet(deadline=0.3)
        pkt = net.metrics.mean_fct()
        flow = FlowLevelSimulation(
            SingleBottleneck(3), RcpModel(), header_bytes=44
        ).run(flows).mean_fct()
        assert pkt == pytest.approx(flow, rel=0.15)
