"""Golden parity: the optimized flow-level engine must produce
bit-identical MetricsCollector output to the frozen pre-optimization code
(engine *and* rate models) on small fig3/fig5/fig8-style grids.

``to_dict()`` equality compares every per-flow float exactly, so any
drift in the allocation arithmetic, event ordering, or completion-time
location fails these tests.
"""

import pytest

from repro.core.config import PdqConfig
from repro.flowsim.d3_model import D3Model
from repro.flowsim.engine import FlowLevelSimulation
from repro.flowsim.naive import (
    NaiveFlowLevelSimulation,
    naive_model_for,
)
from repro.flowsim.pdq_model import PdqModel
from repro.flowsim.rcp_model import RcpModel
from repro.units import KBYTE, MSEC

# importing the figure modules registers their workload kinds
import repro.experiments.fig3  # noqa: F401
import repro.experiments.fig5  # noqa: F401
import repro.experiments.fig8  # noqa: F401
from repro.campaign.registry import build_topology, build_workload


def _run_both(topology_kind, topology_params, workload_kind, workload_params,
              model_factory, seed=1, sim_deadline=4.0, **engine_kwargs):
    """Run optimized and naive engines on the same scenario; return the
    two metrics dicts."""
    results = []
    for engine_cls, wrap in (
        (FlowLevelSimulation, lambda m: m),
        (NaiveFlowLevelSimulation, naive_model_for),
    ):
        topology = build_topology(topology_kind, topology_params)
        flows = build_workload(workload_kind, topology, seed,
                               workload_params)
        sim = engine_cls(topology, wrap(model_factory()), **engine_kwargs)
        results.append(sim.run(flows, deadline=sim_deadline).to_dict())
    return results


FIG3_GRID = [
    # (model factory, n_flows, mean_deadline)
    (lambda: PdqModel(PdqConfig.full()), 6, 30 * MSEC),
    (lambda: PdqModel(PdqConfig.basic()), 6, 30 * MSEC),
    (lambda: PdqModel(PdqConfig.es_et()), 4, 20 * MSEC),
    (RcpModel, 5, None),
    (D3Model, 5, 25 * MSEC),
]


class TestFig3Parity:
    """Query aggregation on the 12-server single-rooted tree."""

    @pytest.mark.parametrize("idx", range(len(FIG3_GRID)))
    def test_bit_identical(self, idx):
        model_factory, n_flows, mean_deadline = FIG3_GRID[idx]
        opt, naive = _run_both(
            "single_rooted", {},
            "fig3.aggregation",
            {"n_flows": n_flows, "mean_size": 150 * KBYTE,
             "mean_deadline": mean_deadline},
            model_factory,
        )
        assert opt == naive


class TestFig5Parity:
    """Realistic VL2-style workload (poisson arrivals, mixed sizes)."""

    @pytest.mark.parametrize("protocol", ["pdq", "rcp", "d3"])
    def test_bit_identical(self, protocol):
        factory = {
            "pdq": lambda: PdqModel(PdqConfig.full()),
            "rcp": RcpModel,
            "d3": D3Model,
        }[protocol]
        opt, naive = _run_both(
            "single_rooted", {},
            "fig5.vl2",
            {"rate_per_sec": 120.0, "duration": 0.1,
             "mean_deadline": 20 * MSEC},
            factory,
            seed=2,
        )
        assert opt == naive


class TestFig8Parity:
    """Scale-sweep cells: permutation traffic on small fat-trees."""

    @pytest.mark.parametrize("protocol,seed", [
        ("pdq", 1), ("pdq", 3), ("rcp", 1),
    ])
    def test_permutation_bit_identical(self, protocol, seed):
        factory = {"pdq": lambda: PdqModel(PdqConfig.full()),
                   "rcp": RcpModel}[protocol]
        opt, naive = _run_both(
            "fattree", {"n_servers": 16},
            "fig8.permutation", {"flows_per_server": 2},
            factory,
            seed=seed,
        )
        assert opt == naive

    def test_random_pairs_deadlines_bit_identical(self):
        opt, naive = _run_both(
            "fattree", {"n_servers": 16},
            "fig8.random_pairs",
            {"n_flows": 24, "mean_deadline": 20 * MSEC},
            lambda: PdqModel(PdqConfig.full()),
        )
        assert opt == naive


class TestAgingAndEstimateParity:
    """Time-varying keys (aging) and progress-derived criticality
    (estimate mode) force per-call key recomputation — the cache must
    not leak stale keys into either path."""

    def test_aging_bit_identical(self):
        opt, naive = _run_both(
            "single_rooted", {},
            "fig3.aggregation",
            {"n_flows": 5, "mean_size": 200 * KBYTE, "mean_deadline": None},
            lambda: PdqModel(PdqConfig.full(aging_rate=2.0)),
        )
        assert opt == naive

    def test_estimate_mode_bit_identical(self):
        opt, naive = _run_both(
            "single_rooted", {},
            "fig3.aggregation",
            {"n_flows": 5, "mean_size": 200 * KBYTE, "mean_deadline": None},
            lambda: PdqModel(PdqConfig.full(criticality_mode="estimate")),
        )
        assert opt == naive

    def test_random_mode_bit_identical(self):
        opt, naive = _run_both(
            "single_rooted", {},
            "fig3.aggregation",
            {"n_flows": 5, "mean_size": 200 * KBYTE,
             "mean_deadline": 30 * MSEC},
            lambda: PdqModel(PdqConfig.full(criticality_mode="random")),
        )
        assert opt == naive
