"""Tests for metrics collection and summaries."""

import pytest

from repro.errors import ExperimentError
from repro.metrics import FlowRecord, MetricsCollector, SummaryStats
from repro.workload.flow import FlowSpec


def _spec(fid=0, deadline=None, arrival=0.0):
    return FlowSpec(fid=fid, src="a", dst="b", size_bytes=1000,
                    arrival=arrival, deadline=deadline)


class TestFlowRecord:
    def test_fct_relative_to_arrival(self):
        record = FlowRecord(spec=_spec(arrival=1.0))
        record.completion_time = 1.5
        assert record.fct == pytest.approx(0.5)

    def test_met_deadline(self):
        record = FlowRecord(spec=_spec(deadline=1.0))
        record.completion_time = 0.9
        assert record.met_deadline
        record.completion_time = 1.1
        assert not record.met_deadline

    def test_no_deadline_never_met(self):
        record = FlowRecord(spec=_spec())
        record.completion_time = 0.1
        assert not record.met_deadline

    def test_incomplete_flow(self):
        record = FlowRecord(spec=_spec(deadline=1.0))
        assert record.fct is None
        assert not record.met_deadline


class TestCollector:
    def test_register_and_complete(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        collector.on_start(1, 0.0)
        collector.on_bytes(1, 1000)
        collector.on_complete(1, 0.25)
        record = collector.record(1)
        assert record.completed
        assert record.bytes_delivered == 1000

    def test_double_registration_rejected(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        with pytest.raises(ExperimentError):
            collector.register(_spec(fid=1))

    def test_first_completion_wins(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        collector.on_complete(1, 0.25)
        collector.on_complete(1, 0.50)
        assert collector.record(1).completion_time == 0.25

    def test_termination_after_completion_ignored(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        collector.on_complete(1, 0.25)
        collector.on_terminated(1, 0.30, "late")
        assert not collector.record(1).terminated

    def test_application_throughput(self):
        collector = MetricsCollector()
        for fid, (deadline, done_at) in enumerate(
            [(1.0, 0.5), (1.0, 2.0), (1.0, None)]
        ):
            collector.register(_spec(fid=fid, deadline=deadline))
            if done_at is not None:
                collector.on_complete(fid, done_at)
        assert collector.application_throughput() == pytest.approx(1 / 3)

    def test_application_throughput_needs_deadline_flows(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        with pytest.raises(ExperimentError):
            collector.application_throughput()

    def test_mean_fct_subset(self):
        collector = MetricsCollector()
        for fid, done in [(1, 0.1), (2, 0.3), (3, 0.5)]:
            collector.register(_spec(fid=fid))
            collector.on_complete(fid, done)
        assert collector.mean_fct(only=[1, 3]) == pytest.approx(0.3)

    def test_mean_fct_empty_raises(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        with pytest.raises(ExperimentError):
            collector.mean_fct()

    def test_unfinished_excludes_terminated(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        collector.register(_spec(fid=2))
        collector.on_terminated(1, 0.1, "reason")
        assert [r.spec.fid for r in collector.unfinished()] == [2]


class TestSummary:
    def test_summary_from_collector(self):
        collector = MetricsCollector()
        for fid, done in [(1, 0.1), (2, 0.2)]:
            collector.register(_spec(fid=fid, deadline=0.15))
            collector.on_complete(fid, done)
        collector.register(_spec(fid=3, deadline=0.15))
        collector.on_terminated(3, 0.05, "early_termination")
        summary = SummaryStats.from_collector(collector)
        assert summary.n_flows == 3
        assert summary.n_completed == 2
        assert summary.n_terminated == 1
        assert summary.mean_fct == pytest.approx(0.15)
        assert summary.application_throughput == pytest.approx(1 / 3)

    def test_describe_renders(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1))
        collector.on_complete(1, 0.1)
        text = SummaryStats.from_collector(collector).describe()
        assert "flows=1" in text
        assert "mean_fct" in text


class TestSerialization:
    def _full_collector(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=1, deadline=0.15, arrival=0.01))
        collector.on_start(1, 0.01)
        collector.on_bytes(1, 1000)
        collector.on_complete(1, 0.12)
        collector.register(_spec(fid=2, deadline=0.15))
        collector.on_terminated(2, 0.05, "early_termination")
        collector.on_retransmit(2)
        collector.register(_spec(fid=3))
        collector.on_probe(3)
        return collector

    def test_flow_spec_roundtrip(self):
        spec = _spec(fid=7, deadline=0.2, arrival=0.3)
        assert FlowSpec.from_dict(spec.to_dict()) == spec

    def test_record_roundtrip(self):
        record = FlowRecord(spec=_spec(fid=1, deadline=0.1))
        record.completion_time = 0.05
        record.bytes_delivered = 1000
        restored = FlowRecord.from_dict(record.to_dict())
        assert restored == record
        assert restored.met_deadline

    def test_collector_roundtrip_preserves_metrics(self):
        collector = self._full_collector()
        restored = MetricsCollector.from_dict(collector.to_dict())
        assert restored.to_dict() == collector.to_dict()
        assert restored.mean_fct() == collector.mean_fct()
        assert (restored.application_throughput()
                == collector.application_throughput())
        assert [r.spec.fid for r in restored.all_records()] == [1, 2, 3]
        assert restored.record(2).terminated
        assert restored.record(2).termination_reason == "early_termination"

    def test_collector_roundtrip_through_json(self):
        import json

        collector = self._full_collector()
        payload = json.loads(json.dumps(collector.to_dict()))
        restored = MetricsCollector.from_dict(payload)
        assert restored.to_dict() == collector.to_dict()

    def test_summary_roundtrip(self):
        collector = self._full_collector()
        summary = SummaryStats.from_collector(collector)
        assert SummaryStats.from_dict(summary.to_dict()) == summary


class TestCompletionObservers:
    def test_observer_fires_when_last_flow_resolves(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=0))
        collector.register(_spec(fid=1))
        fired = []
        collector.add_completion_observer(lambda: fired.append(True))
        assert collector.unfinished_count() == 2
        collector.on_complete(0, 1.0)
        assert fired == []
        collector.on_terminated(1, 2.0, "gave_up")
        assert fired == [True]
        assert collector.unfinished_count() == 0

    def test_resolution_counted_once_per_flow(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=0))
        fired = []
        collector.add_completion_observer(lambda: fired.append(True))
        collector.on_terminated(0, 1.0, "gave_up")
        # a late completion or repeated termination must not re-resolve
        collector.on_complete(0, 2.0)
        collector.on_terminated(0, 3.0, "again")
        assert fired == [True]
        assert collector.unfinished_count() == 0

    def test_unsubscribe(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=0))
        fired = []
        unsubscribe = collector.add_completion_observer(
            lambda: fired.append(True))
        unsubscribe()
        collector.on_complete(0, 1.0)
        assert fired == []

    def test_registering_after_resolution_rearms(self):
        collector = MetricsCollector()
        fired = []
        collector.add_completion_observer(lambda: fired.append(True))
        collector.register(_spec(fid=0))
        collector.on_complete(0, 1.0)
        collector.register(_spec(fid=1))
        collector.on_complete(1, 2.0)
        assert fired == [True, True]

    def test_from_dict_restores_unresolved_count(self):
        collector = MetricsCollector()
        collector.register(_spec(fid=0))
        collector.register(_spec(fid=1))
        collector.register(_spec(fid=2))
        collector.on_complete(0, 1.0)
        collector.on_terminated(1, 1.5, "gave_up")
        restored = MetricsCollector.from_dict(collector.to_dict())
        assert restored.unfinished_count() == 1
        assert len(restored.unfinished()) == 1
