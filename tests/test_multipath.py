"""Tests for Multipath PDQ (§6)."""

import pytest

from repro.core.config import PdqConfig
from repro.core.multipath import MpdqStack, subflow_fid
from repro.errors import WorkloadError
from repro.net.network import Network
from repro.topology import BCube, SingleBottleneck
from repro.units import KBYTE, MBYTE, MSEC
from repro.workload.flow import FlowSpec


def run_mpdq(flows, topo=None, n_subflows=3, deadline=1.0, **cfg):
    topo = topo or BCube(2, 3)
    net = Network(topo, MpdqStack(PdqConfig.full(**cfg),
                                  n_subflows=n_subflows))
    net.launch(flows)
    net.run_until_quiet(deadline=deadline)
    return net


class TestSubflowFids:
    def test_distinct_and_disjoint_from_parents(self):
        fids = {subflow_fid(7, k) for k in range(8)}
        assert len(fids) == 8
        assert all(f >= 1_000_000 for f in fids)

    def test_rejects_huge_parent_fid(self):
        with pytest.raises(WorkloadError):
            subflow_fid(2_000_000, 0)


class TestMpdqDelivery:
    def test_single_flow_completes(self):
        net = run_mpdq([FlowSpec(fid=0, src="h0", dst="h15",
                                 size_bytes=500 * KBYTE)])
        record = net.metrics.record(0)
        assert record.completed
        assert record.bytes_delivered >= 500 * KBYTE

    def test_subflows_use_distinct_paths(self):
        topo = BCube(2, 3)
        net = Network(topo, MpdqStack(n_subflows=4))
        src, dst = net.node("h0"), net.node("h15")
        first_links = set()
        for k in range(4):
            fid = subflow_fid(0, k)
            path = net.router.flow_path(fid, src.id, dst.id)
            first_links.add(path[0].dst.name)
        # h0 and h15 differ in all 4 digits: 4 NICs usable
        assert len(first_links) >= 2

    def test_multipath_beats_single_path_for_large_flows(self):
        flows = [FlowSpec(fid=0, src="h0", dst="h15",
                          size_bytes=2 * MBYTE)]
        from repro.core.stack import PdqStack

        topo = BCube(2, 3)
        single = Network(topo, PdqStack())
        single.launch(flows)
        single.run_until_quiet(deadline=1.0)
        multi = run_mpdq(flows, n_subflows=4)
        assert multi.metrics.record(0).fct < single.metrics.record(0).fct

    def test_works_on_single_path_topology(self):
        """Subflows colliding onto one path must still complete."""
        net = run_mpdq(
            [FlowSpec(fid=0, src="send0", dst="recv",
                      size_bytes=300 * KBYTE)],
            topo=SingleBottleneck(2),
        )
        assert net.metrics.record(0).completed

    def test_many_flows_complete(self):
        flows = [FlowSpec(fid=i, src=f"h{i}", dst=f"h{15 - i}",
                          size_bytes=200 * KBYTE) for i in range(6)]
        net = run_mpdq(flows)
        assert len(net.metrics.completed_records()) == 6

    def test_deterministic(self):
        flows = [FlowSpec(fid=0, src="h0", dst="h15",
                          size_bytes=400 * KBYTE)]
        a = run_mpdq(flows).metrics.record(0).fct
        b = run_mpdq(flows).metrics.record(0).fct
        assert a == b


class TestMpdqEarlyTermination:
    def test_hopeless_flow_terminated(self):
        flows = [FlowSpec(fid=0, src="h0", dst="h15",
                          size_bytes=20 * MBYTE, deadline=1 * MSEC)]
        net = run_mpdq(flows, deadline=0.3)
        record = net.metrics.record(0)
        assert record.terminated
        assert not record.completed

    def test_feasible_deadline_met(self):
        flows = [FlowSpec(fid=0, src="h0", dst="h15",
                          size_bytes=100 * KBYTE, deadline=20 * MSEC)]
        net = run_mpdq(flows)
        assert net.metrics.record(0).met_deadline


class TestMpdqConfig:
    def test_rejects_zero_subflows(self):
        with pytest.raises(WorkloadError):
            MpdqStack(n_subflows=0)

    def test_no_empty_subflows_for_tiny_flows(self):
        # 2-byte flow with 3 subflows: only 2 subflows materialize
        net = run_mpdq([FlowSpec(fid=0, src="h0", dst="h15", size_bytes=2)],
                       n_subflows=3)
        assert net.metrics.record(0).completed

    def test_stack_name_includes_subflows(self):
        assert MpdqStack(n_subflows=5).name == "M-PDQ(5)"
