"""Tests for the packet-level network substrate: queues, links, nodes."""

import pytest

from repro.events import Simulator
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import Packet, PacketKind
from repro.net.queues import DropTailQueue
from repro.units import GBPS, USEC
from repro.utils.rng import spawn_rng


def _packet(size=1500, fid=0, kind=PacketKind.DATA):
    return Packet(fid=fid, src=0, dst=1, kind=kind, size=size,
                  payload=min(size, 1444))


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        a, b = _packet(), _packet()
        q.offer(a)
        q.offer(b)
        assert q.pop() is a
        assert q.pop() is b
        assert q.pop() is None

    def test_tail_drop_when_full(self):
        q = DropTailQueue(2000)
        assert q.offer(_packet(1500))
        assert not q.offer(_packet(1500))
        assert q.drops == 1
        assert q.dropped_bytes == 1500

    def test_byte_accounting(self):
        q = DropTailQueue(10_000)
        q.offer(_packet(1500))
        q.offer(_packet(500))
        assert q.bytes == 2000
        q.pop()
        assert q.bytes == 500

    def test_peak_tracking(self):
        q = DropTailQueue(10_000)
        q.offer(_packet(1500))
        q.offer(_packet(1500))
        q.pop()
        q.pop()
        assert q.peak_bytes == 3000

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class _Sink(Host):
    """Host that records arrivals."""

    def __init__(self, sim, node_id, name):
        super().__init__(sim, node_id, name, processing_delay=25 * USEC)
        self.arrived = []

    def receive(self, packet, in_link):
        self.arrived.append((self.sim.now, packet))


class TestLink:
    def _make(self, rate=1 * GBPS, prop=0.1 * USEC, buffer=4_000_000):
        sim = Simulator()
        src = _Sink(sim, 0, "src")
        dst = _Sink(sim, 1, "dst")
        link = Link(sim, src, dst, rate, prop, buffer, link_id=0)
        return sim, link, dst

    def test_transmission_delay(self):
        sim, link, dst = self._make()
        link.enqueue(_packet(1500))
        sim.run()
        # 1500B at 1Gbps = 12us tx + 0.1us prop + 25us processing
        assert dst.arrived[0][0] == pytest.approx(37.1e-6, rel=1e-6)

    def test_serialization_back_to_back(self):
        sim, link, dst = self._make()
        link.enqueue(_packet(1500))
        link.enqueue(_packet(1500))
        sim.run()
        gap = dst.arrived[1][0] - dst.arrived[0][0]
        assert gap == pytest.approx(12e-6, rel=1e-6)

    def test_buffer_overflow_drops(self):
        sim, link, dst = self._make(buffer=3000)
        results = [link.enqueue(_packet(1500)) for _ in range(4)]
        # first starts transmitting immediately (leaves the queue), so the
        # buffer holds two more; the fourth drops
        assert results == [True, True, True, False]
        sim.run()
        assert len(dst.arrived) == 3
        assert link.queue.drops == 1

    def test_busy_time_accounting(self):
        sim, link, dst = self._make()
        for _ in range(3):
            link.enqueue(_packet(1500))
        sim.run()
        assert link.busy_time == pytest.approx(36e-6, rel=1e-6)
        assert link.bytes_sent == 4500
        assert link.packets_sent == 3

    def test_busy_time_prorated_mid_transmission(self):
        """Regression: busy time used to be charged in full when a
        transmission *started*, so a window ending mid-transmission
        overcounted (utilization > 1). It now accrues as it elapses."""
        sim, link, dst = self._make()  # 1500B at 1Gbps = 12us tx
        link.enqueue(_packet(1500))
        sim.run(until=6e-6)  # halfway through the transmission
        assert link.busy_time == pytest.approx(6e-6, rel=1e-6)
        assert link.utilization(0.0, sim.now, 0.0) == pytest.approx(1.0)
        sim.run()
        assert link.busy_time == pytest.approx(12e-6, rel=1e-6)

    def test_windowed_utilization_never_exceeds_one(self):
        sim, link, dst = self._make()
        for _ in range(4):
            link.enqueue(_packet(1500))
        snapshots = [(0.0, 0.0)]
        # sample every 5us: windows cut transmissions at arbitrary points
        for k in range(1, 12):
            sim.run(until=k * 5e-6)
            u = link.utilization(snapshots[-1][0], sim.now,
                                 snapshots[-1][1])
            assert 0.0 <= u <= 1.0 + 1e-9
            snapshots.append((sim.now, link.busy_time))
        # every multi-sample window is bounded too, and busy is monotone
        for (t0, b0) in snapshots:
            for (t1, b1) in snapshots:
                if t1 <= t0:
                    continue
                assert b1 >= b0 - 1e-15
                assert 0.0 <= (b1 - b0) / (t1 - t0) <= 1.0 + 1e-9

    def test_busy_time_idle_gap_not_charged(self):
        sim, link, dst = self._make()
        link.enqueue(_packet(1500))
        sim.run()  # transmission done at 12us (plus delivery events)
        resume = sim.now
        sim.schedule_at(resume + 100e-6,
                        lambda: link.enqueue(_packet(1500)))
        sim.run()
        assert link.busy_time == pytest.approx(24e-6, rel=1e-6)

    def test_wire_loss_drops_packets(self):
        sim, link, dst = self._make()
        link.set_loss(1.0, spawn_rng(1))
        link.enqueue(_packet())
        sim.run()
        assert dst.arrived == []
        assert link.wire_losses == 1

    def test_loss_rate_statistics(self):
        sim, link, dst = self._make()
        link.set_loss(0.3, spawn_rng(7))
        for _ in range(1000):
            link.enqueue(_packet())
        sim.run()
        assert 0.2 < link.wire_losses / 1000 < 0.4

    def test_invalid_loss_rate(self):
        _, link, _ = self._make()
        with pytest.raises(ValueError):
            link.set_loss(1.5, spawn_rng(1))

    def test_rejects_nonpositive_rate(self):
        sim = Simulator()
        a, b = _Sink(sim, 0, "a"), _Sink(sim, 1, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, 0.0, 0.0, 1000, 0)


class TestHostDispatch:
    def test_data_goes_to_receiver_endpoint(self):
        sim = Simulator()
        host = Host(sim, 0, "h", processing_delay=0.0)
        seen = []

        class Endpoint:
            def on_packet(self, p):
                seen.append(p.kind)

        host.register_receiver(1, Endpoint())
        host.register_sender(1, Endpoint())
        pkt = Packet(fid=1, src=9, dst=0, kind=PacketKind.DATA, size=100)
        host.receive(pkt, None)
        assert seen == [PacketKind.DATA]

    def test_ack_goes_to_sender_endpoint(self):
        sim = Simulator()
        host = Host(sim, 0, "h", processing_delay=0.0)
        seen = []

        class Endpoint:
            def on_packet(self, p):
                seen.append(p.kind)

        host.register_sender(1, Endpoint())
        pkt = Packet(fid=1, src=9, dst=0, kind=PacketKind.ACK, size=100)
        host.receive(pkt, None)
        assert seen == [PacketKind.ACK]

    def test_stray_packet_counted(self):
        sim = Simulator()
        host = Host(sim, 0, "h", processing_delay=0.0)
        pkt = Packet(fid=1, src=9, dst=0, kind=PacketKind.ACK, size=100)
        host.receive(pkt, None)
        assert host.stray_packets == 1

    def test_duplicate_registration_rejected(self):
        from repro.errors import ProtocolError

        host = Host(Simulator(), 0, "h", processing_delay=0.0)

        class Endpoint:
            def on_packet(self, p):
                pass

        host.register_sender(1, Endpoint())
        with pytest.raises(ProtocolError):
            host.register_sender(1, Endpoint())


class TestPacketValidation:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Packet(fid=0, src=0, dst=1, kind=PacketKind.DATA, size=0)

    def test_rejects_payload_over_size(self):
        with pytest.raises(ValueError):
            Packet(fid=0, src=0, dst=1, kind=PacketKind.DATA, size=100,
                   payload=200)

    def test_forward_reverse_classification(self):
        data = Packet(fid=0, src=0, dst=1, kind=PacketKind.DATA, size=100)
        ack = Packet(fid=0, src=1, dst=0, kind=PacketKind.ACK, size=40)
        assert data.is_forward
        assert not ack.is_forward
