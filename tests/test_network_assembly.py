"""Tests for Network construction and configuration."""

import pytest

from repro.core.stack import PdqStack
from repro.errors import TopologyError
from repro.net.network import Network, NetworkConfig
from repro.topology import SingleBottleneck, SingleRootedTree
from repro.units import GBPS, KBYTE, MBYTE, USEC
from repro.workload.flow import FlowSpec


class TestConstruction:
    def test_nodes_and_links_built(self):
        net = Network(SingleRootedTree(), PdqStack())
        assert len(net.nodes) == 17
        assert len(net.links) == 2 * 16  # both directions

    def test_reverse_twins(self):
        net = Network(SingleBottleneck(2), PdqStack())
        for link in net.links:
            assert link.reverse.reverse is link
            assert link.reverse.src is link.dst

    def test_node_lookup(self):
        net = Network(SingleRootedTree(), PdqStack())
        assert net.node("h0").name == "h0"
        with pytest.raises(TopologyError):
            net.node("nope")

    def test_host_lookup_rejects_switch(self):
        net = Network(SingleRootedTree(), PdqStack())
        with pytest.raises(TopologyError):
            net.host("root")

    def test_link_between(self):
        net = Network(SingleBottleneck(2), PdqStack())
        link = net.link_between("sw0", "recv")
        assert link.src.name == "sw0"
        assert link.dst.name == "recv"
        with pytest.raises(TopologyError):
            net.link_between("send0", "recv")  # not adjacent

    def test_every_node_gets_protocol(self):
        net = Network(SingleRootedTree(), PdqStack())
        assert all(node.protocol is not None for node in net.nodes)

    def test_tcp_nodes_have_no_protocol(self):
        from repro.transport import TcpStack

        net = Network(SingleRootedTree(), TcpStack())
        assert all(node.protocol is None for node in net.nodes)

    def test_config_defaults_match_paper(self):
        config = NetworkConfig()
        assert config.buffer_bytes == 4 * MBYTE
        assert config.processing_delay == pytest.approx(25 * USEC)
        assert config.prop_delay == pytest.approx(0.1 * USEC)


class TestRttEstimate:
    def test_two_hop_rtt_is_paperish(self):
        """The paper quotes ~150us datacenter RTTs for this setup."""
        net = Network(SingleBottleneck(2), PdqStack())
        src, dst = net.node("send0"), net.node("recv")
        fwd = net.router.flow_path(0, src.id, dst.id)
        rtt = net.estimate_rtt(fwd)
        assert 80 * USEC < rtt < 160 * USEC


class TestReceiverRateLimits:
    def test_limit_respected(self):
        config = NetworkConfig(receiver_rate_limits={"recv": 0.1 * GBPS})
        net = Network(SingleBottleneck(1), PdqStack(), config=config)
        net.launch([FlowSpec(fid=0, src="send0", dst="recv",
                             size_bytes=100 * KBYTE)])
        net.run_until_quiet(deadline=1.0)
        fct = net.metrics.record(0).fct
        # ~100KB at 100Mbps is 8ms; far above the 0.8ms line-rate time
        assert fct > 6e-3

    def test_default_unlimited(self):
        net = Network(SingleBottleneck(1), PdqStack())
        assert net.receiver_rate_limit("recv") == float("inf")


class TestLossInjection:
    def test_loss_configured_both_directions(self):
        net = Network(SingleBottleneck(2), PdqStack())
        net.set_loss("sw0", "recv", 0.02, seed=1)
        fwd = net.link_between("sw0", "recv")
        assert fwd.loss_rate == 0.02
        assert fwd.reverse.loss_rate == 0.02

    def test_pdq_completes_under_loss(self):
        net = Network(SingleBottleneck(2), PdqStack())
        net.set_loss("sw0", "recv", 0.03, seed=2)
        net.launch([FlowSpec(fid=0, src="send0", dst="recv",
                             size_bytes=500 * KBYTE)])
        net.run_until_quiet(deadline=2.0)
        record = net.metrics.record(0)
        assert record.completed
        assert net.total_wire_losses() > 0

    def test_pdq_loss_penalty_small(self):
        """Fig 9b's shape: PDQ's FCT grows mildly under 3% loss."""
        def fct_at(loss):
            net = Network(SingleBottleneck(4), PdqStack())
            if loss:
                net.set_loss("sw0", "recv", loss, seed=3)
            net.launch([
                FlowSpec(fid=i, src=f"send{i}", dst="recv",
                         size_bytes=300 * KBYTE)
                for i in range(4)
            ])
            net.run_until_quiet(deadline=4.0)
            return net.metrics.mean_fct()

        clean = fct_at(0.0)
        lossy = fct_at(0.03)
        assert lossy < clean * 1.6  # paper: +11%; allow generous slack


class TestCompletionDrivenStop:
    def test_zero_extra_steps_after_last_flow_resolves(self):
        """run_until_quiet must halt on the event that resolves the last
        flow: no chunk polling, no trailing event processing."""
        net = Network(SingleBottleneck(2), PdqStack())
        net.launch([
            FlowSpec(fid=i, src=f"send{i}", dst="recv",
                     size_bytes=50 * KBYTE)
            for i in range(2)
        ])
        steps_at_resolution = []
        net.metrics.add_completion_observer(
            lambda: steps_at_resolution.append(net.sim.processed_events))
        net.run_until_quiet(deadline=5.0)
        assert not net.metrics.unfinished()
        # the observer runs inside the resolving event's callback, before
        # the loop counts that event: exactly one step difference means
        # zero events ran after the one that resolved the last flow
        assert len(steps_at_resolution) == 1
        assert net.sim.processed_events == steps_at_resolution[0] + 1
        # the stop is immediate, not drained: the close handshake
        # (final ACK, TERM, TERM-ACK) is still queued, and simulated time
        # sits at the completion instant, far from the deadline
        assert net.sim.pending() > 0
        last_completion = max(
            r.completion_time for r in net.metrics.all_records())
        assert net.sim.now == last_completion

    def test_run_until_quiet_noop_when_no_flows(self):
        net = Network(SingleBottleneck(1), PdqStack())
        net.run_until_quiet(deadline=1.0)
        assert net.sim.now == 0.0
        assert net.sim.processed_events == 0

    def test_run_until_quiet_respects_deadline_with_unresolved_flows(self):
        # a receiver-limited flow cannot finish by the deadline: the run
        # must end at the deadline with the flow still unresolved
        config = NetworkConfig(receiver_rate_limits={"recv": 0.001 * GBPS})
        net = Network(SingleBottleneck(1), PdqStack(), config=config)
        net.launch([FlowSpec(fid=0, src="send0", dst="recv",
                             size_bytes=10 * MBYTE)])
        net.run_until_quiet(deadline=0.01)
        assert net.metrics.unfinished()
        assert net.sim.now == 0.01

    def test_resumable_after_completion_stop(self):
        # stop() from the observer must not wedge the simulator: a later
        # launch + run picks up where the previous run stopped
        net = Network(SingleBottleneck(2), PdqStack())
        net.launch([FlowSpec(fid=0, src="send0", dst="recv",
                             size_bytes=20 * KBYTE)])
        net.run_until_quiet(deadline=5.0)
        assert net.metrics.record(0).completed
        resumed_at = net.sim.now
        net.launch([FlowSpec(fid=1, src="send1", dst="recv",
                             size_bytes=20 * KBYTE,
                             arrival=resumed_at + 0.001)])
        net.run_until_quiet(deadline=5.0)
        assert net.metrics.record(1).completed
