"""Tests for the unified telemetry layer (repro.obs): run counters,
declarative probes, flow-lifecycle traces, campaign logging, and the
``repro report`` subcommand."""

import json
import logging

import pytest

from repro.campaign import (
    CampaignRunner,
    ResultStore,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    run_scenario,
)
from repro.campaign.cli import main as cli_main
from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector
from repro.obs import (
    FlowTracer,
    RunStats,
    validate_probes_option,
    write_trace_jsonl,
)
from repro.obs.log import get_logger, setup_cli_logging
from repro.obs.report import build_report, write_report
from repro.obs.trace import read_trace_jsonl
from repro.units import KBYTE

PROBES = {
    "bottleneck": {"kind": "link", "link": ["tor0", "h0"],
                   "interval": 0.0005},
    "rates": {"kind": "flow_rates", "interval": 0.0005},
}


def _telemetry_spec(protocol="RCP", engine="packet", probes=True,
                    trace=True, n_flows=3):
    options = {}
    if probes:
        options["probes"] = PROBES
    if trace:
        options["trace"] = True
    return ScenarioSpec(
        protocol=protocol,
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("fig3.aggregation", {
            "n_flows": n_flows, "mean_size": 100 * KBYTE,
        }),
        engine=engine,
        sim_deadline=4.0,
        options=options,
    )


class TestRunStats:
    def test_inc_get_len_bool(self):
        stats = RunStats()
        assert not stats and len(stats) == 0
        stats.inc("a")
        stats.inc("a", 4)
        stats.set("b", 7)
        assert stats.get("a") == 5
        assert stats.get("missing") == 0
        assert stats.get("missing", 9) == 9
        assert stats and len(stats) == 2

    def test_merge_sums_shared_names(self):
        a = RunStats({"x": 1, "y": 2})
        b = RunStats({"y": 3, "z": 4})
        assert a.merge(b) is a
        assert a.to_dict() == {"x": 1, "y": 5, "z": 4}

    def test_to_dict_sorted_and_round_trips(self):
        stats = RunStats({"z.last": 1, "a.first": 2})
        assert list(stats.to_dict()) == ["a.first", "z.last"]
        assert RunStats.from_dict(stats.to_dict()).to_dict() == stats.to_dict()


class TestProbeValidation:
    def test_accepts_canonical_shape(self):
        assert set(validate_probes_option(PROBES)) == {"bottleneck", "rates"}

    def test_rejects_non_mapping(self):
        with pytest.raises(ExperimentError, match="must map"):
            validate_probes_option(["link"])
        with pytest.raises(ExperimentError, match="must be a mapping"):
            validate_probes_option({"p": "link"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ExperimentError, match="unknown kind"):
            validate_probes_option({"p": {"kind": "queue", "interval": 1.0}})

    def test_rejects_bad_interval(self):
        for interval in (0, -1.0, "fast", None):
            with pytest.raises(ExperimentError, match="interval"):
                validate_probes_option(
                    {"p": {"kind": "flow_rates", "interval": interval}}
                )

    def test_rejects_bad_link(self):
        for link in (None, "tor0-h0", ["tor0"], ["tor0", 3]):
            with pytest.raises(ExperimentError, match="link"):
                validate_probes_option(
                    {"p": {"kind": "link", "link": link, "interval": 1.0}}
                )


class TestProbesOnEngines:
    @pytest.mark.parametrize("engine", ["packet", "flow"])
    def test_link_and_rate_probes_produce_series(self, engine):
        collector = run_scenario(_telemetry_spec(engine=engine, trace=False))
        assert set(collector.probes) == {"bottleneck", "rates"}

        link = collector.probes["bottleneck"]
        assert link["kind"] == "link"
        assert link["columns"] == ["t", "utilization", "queue_packets",
                                   "queue_bytes"]
        assert link["params"]["link"] == ["tor0", "h0"]
        assert link["samples"], "link probe recorded no samples"
        for t, util, _qp, _qb in link["samples"]:
            assert t >= 0
            assert 0.0 <= util <= 1.0
        # three 100 KB flows fan in through tor0->h0: some sample must
        # see the bottleneck actually carrying traffic
        assert any(row[1] > 0 for row in link["samples"])

        rates = collector.probes["rates"]
        assert rates["kind"] == "flow_rates"
        assert rates["columns"] == ["t", "rates_bps"]
        assert rates["samples"]
        seen_fids = set()
        for _t, per_flow in rates["samples"]:
            assert isinstance(per_flow, dict)
            for fid, bps in per_flow.items():
                assert isinstance(fid, str)
                assert bps > 0
                seen_fids.add(fid)
        assert seen_fids, "no flow ever reported a rate"

    def test_fluid_queue_columns_are_zero(self):
        collector = run_scenario(_telemetry_spec(engine="flow", trace=False))
        for _, _, qp, qb in collector.probes["bottleneck"]["samples"]:
            assert qp == 0 and qb == 0

    def test_unknown_link_fails_cleanly_on_both_engines(self):
        bad = {"p": {"kind": "link", "link": ["tor0", "nope"],
                     "interval": 0.001}}
        for engine in ("packet", "flow"):
            spec = _telemetry_spec(engine=engine, probes=False, trace=False)
            spec = spec.with_(**{"options.probes": bad})
            with pytest.raises(Exception):
                run_scenario(spec)

    def test_probes_round_trip_through_json(self):
        collector = run_scenario(_telemetry_spec(trace=False))
        restored = MetricsCollector.from_dict(
            json.loads(json.dumps(collector.to_dict()))
        )
        assert restored.probes == collector.probes
        assert restored.to_dict() == collector.to_dict()


class TestTracer:
    def test_classifies_rate_transitions(self):
        tracer = FlowTracer()
        tracer.on_arrival(1, 0.0)
        tracer.on_rate(1, 0.0, 0.0)      # never sent: dropped
        tracer.on_rate(1, 0.001, 5e8)    # first grant
        tracer.on_rate(1, 0.002, 5e8)    # unchanged: dropped
        tracer.on_rate(1, 0.003, 0.0)    # preempted
        tracer.on_rate(1, 0.004, 0.0)    # still paused: dropped
        tracer.on_rate(1, 0.005, 1e9)    # granted again
        tracer.on_complete(1, 0.006)
        assert [e["event"] for e in tracer.events] == [
            "arrival", "rate", "pause", "resume", "complete",
        ]
        pause = tracer.events[2]
        assert pause["flow"] == 1 and pause["rate"] == 0.0

    def test_terminated_carries_reason(self):
        tracer = FlowTracer()
        tracer.on_terminated(7, 1.5, "deadline")
        assert tracer.events == [
            {"t": 1.5, "flow": 7, "event": "terminated",
             "reason": "deadline"},
        ]

    def test_jsonl_round_trip(self, tmp_path):
        events = [
            {"t": 0.0, "flow": 0, "event": "arrival"},
            {"t": 0.1, "flow": 0, "event": "complete"},
        ]
        path = write_trace_jsonl(tmp_path / "sub" / "t.jsonl", events,
                                 header={"key": "abc"})
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0]) == {"header": {"key": "abc"}}
        assert read_trace_jsonl(path) == events


class TestTraceOnEngines:
    @pytest.mark.parametrize("engine", ["packet", "flow"])
    def test_lifecycle_events_recorded(self, engine):
        collector = run_scenario(_telemetry_spec(
            protocol="PDQ(Full)", engine=engine, probes=False,
        ))
        assert collector.trace
        # the live tracer never leaks into the finished collector
        assert collector.tracer is None
        kinds = {e["event"] for e in collector.trace}
        assert kinds <= {"arrival", "rate", "pause", "resume",
                         "complete", "terminated"}
        arrivals = [e for e in collector.trace if e["event"] == "arrival"]
        assert len(arrivals) == len(collector)
        completes = [e for e in collector.trace if e["event"] == "complete"]
        assert len(completes) == len(collector.completed_records())
        assert any(e["event"] == "rate" for e in collector.trace)

    def test_fluid_preemption_emits_pause_and_resume(self):
        from repro.core.config import PdqConfig
        from repro.flowsim.engine import FlowLevelSimulation
        from repro.flowsim.pdq_model import PdqModel
        from repro.workload.flow import FlowSpec

        topology = TopologySpec("single_rooted").build()
        sim = FlowLevelSimulation(topology, PdqModel(PdqConfig.full()))
        sim.metrics.tracer = FlowTracer()
        flows = [
            FlowSpec(fid=0, src="h1", dst="h0", size_bytes=500 * KBYTE,
                     arrival=0.0, deadline=0.1),
            # arrives mid-flight with a much tighter deadline: PDQ
            # preempts flow 0 for it (paper Fig 1 dynamics)
            FlowSpec(fid=1, src="h1", dst="h0", size_bytes=100 * KBYTE,
                     arrival=0.001, deadline=0.004),
        ]
        collector = sim.run(flows, deadline=1.0)
        events = sim.metrics.tracer.events
        flow0 = [e["event"] for e in events if e["flow"] == 0]
        assert "pause" in flow0 and "resume" in flow0
        assert flow0.index("pause") < flow0.index("resume")
        assert sim.pauses >= 1 and sim.resumes >= 1
        assert len(collector.completed_records()) == 2

    def test_untraced_run_has_empty_trace(self):
        collector = run_scenario(_telemetry_spec(probes=False, trace=False))
        assert collector.trace == []
        assert "trace" not in collector.to_dict()


class TestRunCounters:
    def test_packet_run_harvests_counters(self):
        collector = run_scenario(_telemetry_spec(probes=False, trace=False))
        stats = collector.stats
        assert stats["sim.events"] > 0
        assert stats["net.packets_sent"] > 0
        assert stats["net.bytes_sent"] > stats["net.packets_sent"]
        assert stats["net.packets_forwarded"] > 0
        for key in ("sim.compactions", "sim.timer_pushbacks",
                    "net.packets_dropped", "net.wire_losses",
                    "flows.pauses", "flows.resumes"):
            assert stats[key] >= 0

    def test_fluid_run_harvests_counters(self):
        collector = run_scenario(_telemetry_spec(
            protocol="PDQ(Full)", engine="flow", probes=False, trace=False,
        ))
        stats = collector.stats
        assert stats["fluid.iterations"] > 0
        assert stats["fluid.allocate_calls"] > 0
        # PDQ's model keeps a comparator-key cache; the counters must
        # account for every keyed flow
        assert (stats["fluid.comparator_cache_hits"]
                + stats["fluid.comparator_cache_misses"]) > 0

    def test_fluid_non_pdq_has_no_cache_counters(self):
        collector = run_scenario(_telemetry_spec(
            protocol="RCP", engine="flow", probes=False, trace=False,
        ))
        assert "fluid.comparator_cache_hits" not in collector.stats

    def test_stats_serialized_sorted(self):
        collector = run_scenario(_telemetry_spec(probes=False, trace=False))
        out = collector.to_dict()
        assert list(out["stats"]) == sorted(out["stats"])

    def test_direct_engine_run_keeps_legacy_payload_shape(self):
        """Engines used directly (the bench parity path) emit exactly the
        pre-telemetry payload: no stats/probes/trace keys."""
        from repro.flowsim.engine import FlowLevelSimulation
        from repro.flowsim.rcp_model import RcpModel
        from repro.workload.flow import FlowSpec

        topology = TopologySpec("single_rooted").build()
        sim = FlowLevelSimulation(topology, RcpModel())
        collector = sim.run(
            [FlowSpec(fid=0, src="h1", dst="h0", size_bytes=10 * KBYTE,
                      arrival=0.0, deadline=None)],
            deadline=1.0,
        )
        assert set(collector.to_dict()) == {"records"}


class TestCampaignTelemetry:
    def test_serial_and_parallel_telemetry_identical(self):
        specs = [_telemetry_spec("RCP"), _telemetry_spec("PDQ(Full)")]
        serial = CampaignRunner(max_workers=0).run(specs)
        with CampaignRunner(max_workers=2) as runner:
            parallel = runner.run(specs)
        for a, b in zip(serial.collectors(), parallel.collectors(), strict=True):
            assert a.stats == b.stats
            assert a.probes == b.probes
            assert a.trace == b.trace
            assert a.to_dict() == b.to_dict()

    def test_warm_cache_reload_is_stable(self, tmp_path):
        spec = _telemetry_spec()
        store = ResultStore(tmp_path)
        cold = CampaignRunner(store=store).run([spec])
        warm = CampaignRunner(store=store).run([spec])
        assert warm.executed_count == 0 and warm.cached_count == 1
        fresh, cached = cold.collectors()[0], warm.collectors()[0]
        assert cached.stats == fresh.stats
        assert cached.probes == fresh.probes
        assert cached.trace == fresh.trace
        assert cached.to_dict() == fresh.to_dict()

    def test_campaign_log_rows(self, tmp_path):
        spec = _telemetry_spec(probes=False, trace=False)
        store = ResultStore(tmp_path)
        CampaignRunner(store=store).run([spec])
        CampaignRunner(store=store).run([spec])
        rows = store.read_log()
        assert len(rows) == 2
        executed, cached = rows
        assert executed["cached"] is False and executed["ok"] is True
        assert executed["worker"] is not None
        assert executed["elapsed"] > 0
        assert executed["attempts"] == 1
        assert cached["cached"] is True
        assert all(r["key"] == spec.key for r in rows)
        assert all("scenario" in r and "logged_at" in r for r in rows)

    def test_log_survives_corrupt_lines_and_stays_out_of_entries(
            self, tmp_path):
        store = ResultStore(tmp_path)
        store.log_outcome({"key": "k1", "ok": True})
        with store.log_path.open("a") as fh:
            fh.write("{torn json\n\n")
        store.log_outcome({"key": "k2", "ok": False})
        assert [r["key"] for r in store.read_log()] == ["k1", "k2"]
        assert len(store) == 0  # the .jsonl log is not a store entry
        assert store.clear_log() is True
        assert store.read_log() == []

    def test_store_entries_expose_stats(self, tmp_path):
        spec = _telemetry_spec(probes=False, trace=False)
        store = ResultStore(tmp_path)
        CampaignRunner(store=store).run([spec])
        (entry,) = store.entries()
        assert entry.stats["sim.events"] > 0

    def test_trace_dir_exports_jsonl(self, tmp_path):
        spec = _telemetry_spec(probes=False)
        trace_dir = tmp_path / "traces"
        store = ResultStore(tmp_path / "store")
        CampaignRunner(store=store, trace_dir=trace_dir).run([spec])
        path = trace_dir / f"{spec.key}.jsonl"
        assert path.exists()
        events = read_trace_jsonl(path)
        assert events and events[0]["event"] == "arrival"
        header = json.loads(path.read_text().splitlines()[0])["header"]
        assert header["key"] == spec.key
        # cached outcomes export too: the trace rides in the store
        path.unlink()
        CampaignRunner(store=store, trace_dir=trace_dir).run([spec])
        assert path.exists()

    def test_run_spec_cli_end_to_end(self, tmp_path, capsys):
        """Acceptance: one run-spec study yields counters, probe series
        on each engine, a JSONL trace, and a report — spec/CLI options
        only, no figure code touched."""
        cache = tmp_path / "cache"
        traces = tmp_path / "traces"
        out = tmp_path / "report.json"
        code = cli_main([
            "run-spec", "examples/specs/telemetry_study.json",
            "--jobs", "0", "--cache", str(cache),
            "--trace-dir", str(traces),
        ])
        assert code == 0
        store = ResultStore(cache)
        entries = store.entries()
        assert len(entries) == 2  # packet + fluid
        for entry in entries:
            assert entry.stats
        collectors = [store.get(e.key) for e in entries]
        for collector in collectors:
            assert set(collector.probes) == {"bottleneck", "rates"}
            assert collector.trace
        assert len(list(traces.glob("*.jsonl"))) == 2
        capsys.readouterr()
        assert cli_main(["report", str(cache), "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["n_entries"] == 2
        assert report["counters"]["sim.events"] > 0
        assert "report" in capsys.readouterr().out


class TestReport:
    def _store_with_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [_telemetry_spec(probes=False, trace=False),
                 _telemetry_spec(probes=False, trace=False, engine="flow")]
        CampaignRunner(store=store).run(specs)
        CampaignRunner(store=store).run(specs)  # all cached
        return store

    def test_build_report_summarizes_campaign(self, tmp_path):
        store = self._store_with_runs(tmp_path)
        report = build_report(store)
        assert report["schema"] == 1
        assert report["n_entries"] == 2
        campaign = report["campaign"]
        assert campaign["runs"] == 4
        assert campaign["executed"] == 2
        assert campaign["cached"] == 2
        assert campaign["failed"] == 0
        assert campaign["cache_hit_rate"] == pytest.approx(0.5)
        assert campaign["workers"]
        assert campaign["wall_time_s"] > 0
        assert len(report["slowest"]) == 2
        assert report["slowest"][0]["elapsed_s"] >= \
            report["slowest"][1]["elapsed_s"]
        # packet and fluid counters aggregate in one namespace
        assert report["counters"]["sim.events"] > 0
        assert report["counters"]["fluid.iterations"] > 0
        assert report["validation"] is None

    def test_empty_store_reports_cleanly(self, tmp_path):
        report = build_report(ResultStore(tmp_path))
        assert report["n_entries"] == 0
        assert report["campaign"]["runs"] == 0
        assert report["campaign"]["cache_hit_rate"] is None
        assert report["slowest"] == []
        assert report["counters"] == {}

    def test_validation_margins_folded_in(self, tmp_path):
        validate = tmp_path / "VALIDATE.json"
        validate.write_text(json.dumps({
            "ok": True, "n_pairs": 1, "n_failed": 0,
            "pairs": [{
                "name": "edge/single-RCP",
                "checks": [
                    {"name": "mean_fct", "measured": 0.1, "limit": 0.5,
                     "ok": True},
                    {"name": "flow_count", "measured": None, "limit": None,
                     "ok": True},
                ],
            }],
        }))
        report = build_report(ResultStore(tmp_path / "s"),
                              validate_path=validate)
        validation = report["validation"]
        assert validation["ok"] is True
        assert validation["n_pairs"] == 1
        (margin,) = validation["tightest"]
        assert margin["pair"] == "edge/single-RCP"
        assert margin["check"] == "mean_fct"
        assert margin["margin"] == pytest.approx(0.2)

    def test_write_report_round_trips(self, tmp_path):
        report = build_report(ResultStore(tmp_path / "s"))
        out = tmp_path / "r.json"
        write_report(report, out)
        assert json.loads(out.read_text()) == report

    def test_cli_report_missing_validate_is_not_an_error(self, tmp_path,
                                                         capsys):
        store = self._store_with_runs(tmp_path)
        code = cli_main(["report", str(store.root),
                         "--validate", str(tmp_path / "missing.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "run counters" in out
        assert "no validation report" in out


class TestLogging:
    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("campaign.runner").name == "repro.campaign.runner"
        assert get_logger("repro.obs").name == "repro.obs"

    def test_verbosity_levels(self):
        assert setup_cli_logging(-1).level == logging.ERROR
        assert setup_cli_logging(0).level == logging.WARNING
        assert setup_cli_logging(1).level == logging.INFO
        assert setup_cli_logging(2).level == logging.DEBUG
        logger = setup_cli_logging(0)
        assert len(logger.handlers) == 1  # idempotent
        assert logger.propagate is False

    def test_cli_verbose_flag_logs_campaign_info(self, tmp_path, capsys):
        code = cli_main([
            "-v", "validate", "--quick", "--only", "edge/empty",
            "--no-cache", "--jobs", "0",
            "--out", str(tmp_path / "v.json"),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "INFO repro.campaign.runner" in err
        setup_cli_logging(0)  # restore default level for other tests
