"""Tests for the packet pool lifecycle and the ring-buffer queue.

The pool's contract: exactly one terminal sink releases each packet, a
recycled packet carries nothing of its previous life, and debug mode
turns lifecycle violations (double release, leaks, stale fields) into
hard errors. The ring-buffer DropTailQueue must be observationally
identical to the deque implementation it replaced.
"""

from collections import deque

import pytest

from repro.errors import ProtocolError
from repro.events import Simulator
from repro.net.headers import PdqHeader, RcpHeader
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import Packet, PacketKind
from repro.net.pool import PacketPool
from repro.net.queues import _MIN_SLOTS, DropTailQueue
from repro.units import GBPS, USEC
from repro.utils.rng import spawn_rng


def _packet(size=1500, fid=0, kind=PacketKind.DATA):
    return Packet(fid=fid, src=0, dst=1, kind=kind, size=size,
                  payload=min(size, 1444))


class TestPacketPoolRecycling:
    def test_hit_returns_recycled_object(self):
        pool = PacketPool()
        first = pool.acquire(1, 0, 1, PacketKind.DATA, 1500)
        pool.release(first)
        second = pool.acquire(2, 0, 1, PacketKind.ACK, 44)
        assert second is first
        assert pool.hits == 1 and pool.misses == 1
        assert pool.size == 1  # one distinct packet ever created

    def test_recycled_packet_has_no_stale_fields(self):
        pool = PacketPool(debug=True)
        header = pool.acquire_pdq(1e9, None, 0.01, 0.002, 0.0, 0.0, 0.0)
        loaded = pool.acquire(
            7, 0, 1, PacketKind.DATA, 1500, seq=3, payload=1444,
            sched=header, ack_range=(0, 3), path=("l0", "l1"),
        )
        loaded.hop = 2
        pool.release(loaded)
        fresh = pool.acquire(8, 1, 0, PacketKind.ACK, 44)
        assert fresh is loaded
        assert fresh.sched is None
        assert fresh.ack_range is None
        assert fresh.path == ()
        assert fresh.hop == 0
        assert fresh.sent_time == -1.0

    def test_release_recycles_attached_header(self):
        pool = PacketPool()
        header = pool.acquire_rcp(1e9, 0.001)
        packet = pool.acquire(1, 0, 1, PacketKind.DATA, 1544, sched=header)
        pool.release(packet)
        again = pool.acquire_rcp(2e9, 0.002)
        assert again is header
        assert again.rate == 2e9 and again.rtt == 0.002

    def test_detached_header_is_not_double_freed(self):
        # _reply transfers the header onto the ACK and nulls the donor's
        # sched; releasing the donor must then leave the header alone
        pool = PacketPool()
        header = pool.acquire_pdq(1e9, None, 0.01, 0.002, 0.0, 0.0, 0.0)
        donor = pool.acquire(1, 0, 1, PacketKind.DATA, 1500, sched=header)
        donor.sched = None  # transferred to the ACK
        pool.release(donor)
        assert pool.acquire_pdq(0, None, 0, 0, 0, 0, 0) is not header

    def test_header_pools_are_per_class(self):
        pool = PacketPool()
        pdq = pool.acquire_pdq(1e9, None, 0.01, 0.002, 0.0, 0.0, 0.0)
        pool.release_header(pdq)
        rcp = pool.acquire_rcp(1e9, 0.001)
        assert isinstance(rcp, RcpHeader)
        assert pool.acquire_pdq(0, None, 0, 0, 0, 0, 0) is pdq

    def test_preallocate_counts_as_footprint(self):
        pool = PacketPool(preallocate=4)
        assert pool.size == 4
        assert pool.free_count() == 4
        pool.acquire(1, 0, 1, PacketKind.DATA, 1500)
        assert pool.hits == 1 and pool.misses == 0


class TestPacketPoolDebugChecker:
    def test_leak_checker_flags_unreleased_packet(self):
        pool = PacketPool(debug=True)
        kept = pool.acquire(1, 0, 1, PacketKind.DATA, 1500)
        released = pool.acquire(2, 0, 1, PacketKind.DATA, 1500)
        pool.release(released)
        assert pool.outstanding() == [kept]
        with pytest.raises(ProtocolError, match="never released"):
            pool.assert_no_leaks()
        pool.release(kept)
        pool.assert_no_leaks()

    def test_double_release_raises(self):
        pool = PacketPool(debug=True)
        packet = pool.acquire(1, 0, 1, PacketKind.DATA, 1500)
        pool.release(packet)
        with pytest.raises(ProtocolError, match="does not own"):
            pool.release(packet)

    def test_foreign_packet_release_raises(self):
        pool = PacketPool(debug=True)
        with pytest.raises(ProtocolError, match="does not own"):
            pool.release(_packet())

    def test_stale_fields_on_reacquire_raise(self):
        pool = PacketPool(debug=True)
        packet = pool.acquire(1, 0, 1, PacketKind.DATA, 1500)
        pool.release(packet)
        # simulate a lifecycle bug: someone scribbles on a freed packet
        packet.sched = PdqHeader(rate=0.0, pauseby=None, deadline=0.0,
                                 expected_tx=0.0, rtt=0.0, inter_probe=0.0,
                                 criticality=0.0)
        packet.ack_range = (1, 2)
        with pytest.raises(ProtocolError, match="stale"):
            pool.acquire(2, 0, 1, PacketKind.DATA, 1500)


class _DequeRefQueue:
    """The pre-ring DropTailQueue, reconstructed as a parity oracle."""

    def __init__(self, capacity_bytes):
        self.capacity_bytes = capacity_bytes
        self._q = deque()
        self._bytes = 0
        self.drops = 0
        self.dropped_bytes = 0
        self.peak_bytes = 0

    def __len__(self):
        return len(self._q)

    @property
    def bytes(self):
        return self._bytes

    def offer(self, packet):
        if self._bytes + packet.size > self.capacity_bytes:
            self.drops += 1
            self.dropped_bytes += packet.size
            return False
        self._q.append(packet)
        self._bytes += packet.size
        self.peak_bytes = max(self.peak_bytes, self._bytes)
        return True

    def pop(self):
        if not self._q:
            return None
        packet = self._q.popleft()
        self._bytes -= packet.size
        return packet


def _assert_same_state(ring, ref):
    assert len(ring) == len(ref)
    assert ring.bytes == ref.bytes
    assert ring.drops == ref.drops
    assert ring.dropped_bytes == ref.dropped_bytes
    assert ring.peak_bytes == ref.peak_bytes


class TestRingBufferParity:
    def test_randomized_offer_pop_parity(self):
        rng = spawn_rng(20120813, "test:ring_parity")
        ring = DropTailQueue(20_000)
        ref = _DequeRefQueue(20_000)
        for _ in range(5000):
            if rng.random() < 0.6:
                p = _packet(size=int(rng.integers(40, 3000)))
                assert ring.offer(p) == ref.offer(p)
            else:
                assert ring.pop() is ref.pop()
            _assert_same_state(ring, ref)
        while len(ref):
            assert ring.pop() is ref.pop()
        assert ring.pop() is None and ref.pop() is None

    def test_growth_preserves_fifo_order(self):
        # force several ring doublings with more packets than _MIN_SLOTS
        n = _MIN_SLOTS * 5
        ring = DropTailQueue(n * 100)
        packets = [_packet(size=100, fid=i) for i in range(n)]
        for p in packets:
            assert ring.offer(p)
        assert [ring.pop() for _ in range(n)] == packets

    def test_interleaved_wraparound(self):
        # head chases tail around the ring without triggering growth
        ring = DropTailQueue(10_000_000)
        ref = _DequeRefQueue(10_000_000)
        fid = 0
        for _ in range(100):
            for _ in range(3):
                p = _packet(size=100, fid=fid)
                fid += 1
                ring.offer(p)
                ref.offer(p)
            for _ in range(3):
                assert ring.pop() is ref.pop()
            _assert_same_state(ring, ref)

    def test_tail_drop_under_loss_pressure(self):
        ring = DropTailQueue(4000)
        ref = _DequeRefQueue(4000)
        for i in range(10):
            p = _packet(size=1500, fid=i)
            assert ring.offer(p) == ref.offer(p)
        _assert_same_state(ring, ref)
        assert ring.drops == 8  # two fit, eight tail-dropped

    def test_tail_drop_and_wire_loss_release_to_pool(self):
        """The link is the terminal sink for packets the far node never
        sees: tail-drops on the ring queue and ``set_loss`` wire losses
        must both hand the packet back, so nothing leaks under pressure."""
        sim = Simulator()
        pool = PacketPool(debug=True)
        src = Host(sim, 0, "src", processing_delay=0.0)
        dst = Host(sim, 1, "dst", processing_delay=25 * USEC)
        dst.pool = pool
        link = Link(sim, src, dst, 1 * GBPS, 0.1 * USEC,
                    buffer_bytes=3000, link_id=0)
        link.pool = pool
        link.set_loss(0.5, spawn_rng(7))
        sent = 0
        for _ in range(10):
            # one transmitting + two buffered fit; the rest tail-drop
            for i in range(6):
                link.enqueue(
                    pool.acquire(0, 0, 1, PacketKind.DATA, 1500, seq=i))
                sent += 1
            sim.run()  # drain the wave before the next burst
        delivered = sent - link.queue.drops - link.wire_losses
        assert link.queue.drops == 30  # 3 of every 6 fit
        assert link.wire_losses > 0
        assert dst.stray_packets == delivered  # no endpoints registered
        pool.assert_no_leaks()  # every drop path released its packet
        assert pool.free_count() == pool.size

    def test_touch_matches_offer_then_pop(self):
        # touch() must make the same drop decision and peak update as
        # offer()+pop() without mutating occupancy
        ring = DropTailQueue(4000)
        ring.offer(_packet(size=1500))
        assert ring.touch(_packet(size=2000))
        assert ring.peak_bytes == 3500
        assert ring.bytes == 1500 and len(ring) == 1
        assert not ring.touch(_packet(size=3000))
        assert ring.drops == 1
        assert ring.dropped_bytes == 3000
        assert ring.peak_bytes == 3500
