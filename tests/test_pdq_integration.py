"""End-to-end PDQ protocol tests on real simulated networks."""

import pytest

from repro.core.config import PdqConfig
from repro.core.stack import PdqStack
from repro.net.network import Network
from repro.topology import SingleBottleneck, SingleRootedTree
from repro.units import KBYTE, MBYTE, MSEC
from repro.workload.flow import FlowSpec


def run_flows(flows, n_senders=None, config=None, deadline=1.0, topo=None):
    topo = topo or SingleBottleneck(n_senders or len(flows))
    net = Network(topo, PdqStack(config or PdqConfig.full()))
    net.launch(flows)
    net.run_until_quiet(deadline=deadline)
    return net


class TestBasicOperation:
    def test_single_flow_completes(self):
        net = run_flows([FlowSpec(fid=0, src="send0", dst="recv",
                                  size_bytes=100 * KBYTE)])
        record = net.metrics.record(0)
        assert record.completed
        # raw 100KB at 1Gbps is 0.8ms; with headers + 2-RTT init < 1.3ms
        assert 0.8e-3 < record.fct < 1.4e-3

    def test_completion_means_all_bytes_delivered(self):
        net = run_flows([FlowSpec(fid=0, src="send0", dst="recv",
                                  size_bytes=50 * KBYTE)])
        assert net.metrics.record(0).bytes_delivered == 50 * KBYTE

    def test_sjf_order_on_shared_bottleneck(self):
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=1 * MBYTE),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE),
        ]
        net = run_flows(flows)
        fct = net.metrics.fct_by_fid()
        assert fct[1] < fct[0]  # short flow wins
        assert fct[1] < 2e-3    # short flow barely delayed by the long one

    def test_no_drops_under_contention(self):
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=200 * KBYTE) for i in range(8)]
        net = run_flows(flows)
        assert net.total_drops() == 0

    def test_preemption_of_running_flow(self):
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=2 * MBYTE),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=50 * KBYTE,
                     arrival=3 * MSEC),
        ]
        net = run_flows(flows)
        record = net.metrics.record(1)
        # the short flow preempts: done well before the long flow would
        # yield under fair sharing
        assert record.fct < 1.5e-3

    def test_seamless_switching_times(self):
        """The Fig 6 headline: five ~1MB flows finish serially by ~42ms."""
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE + i * 1000) for i in range(5)]
        net = run_flows(flows)
        completions = sorted(r.fct for r in net.metrics.all_records())
        assert completions[-1] < 45e-3
        # serial SJF spacing: each subsequent completion ~8.4ms apart
        gaps = [b - a for a, b in zip(completions, completions[1:], strict=False)]
        for gap in gaps:
            assert 7e-3 < gap < 10.5e-3

    def test_deterministic_given_seeded_workload(self):
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=100 * KBYTE + i) for i in range(4)]
        fct_a = run_flows(flows).metrics.fct_by_fid()
        fct_b = run_flows(flows).metrics.fct_by_fid()
        assert fct_a == fct_b


class TestDeadlinesAndEarlyTermination:
    def test_meets_feasible_deadlines(self):
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=100 * KBYTE,
                     deadline=20 * MSEC),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE,
                     deadline=40 * MSEC),
        ]
        net = run_flows(flows)
        assert net.metrics.application_throughput() == 1.0

    def test_hopeless_flow_terminated_at_start(self):
        flows = [FlowSpec(fid=0, src="send0", dst="recv",
                          size_bytes=10 * MBYTE, deadline=1 * MSEC)]
        net = run_flows(flows)
        record = net.metrics.record(0)
        assert record.terminated
        assert not record.completed
        assert "early_termination" in record.termination_reason

    def test_et_disabled_keeps_hopeless_flow(self):
        flows = [FlowSpec(fid=0, src="send0", dst="recv",
                          size_bytes=10 * MBYTE, deadline=1 * MSEC)]
        net = run_flows(flows, config=PdqConfig.es(), deadline=0.2)
        record = net.metrics.record(0)
        assert not record.terminated
        assert record.completed  # finishes late instead

    def test_edf_dominates_sjf(self):
        """A smaller flow with a later deadline yields to a larger flow
        with an earlier deadline (EDF before SJF in the comparator)."""
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=500 * KBYTE,
                     deadline=6 * MSEC),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE,
                     deadline=60 * MSEC),
        ]
        net = run_flows(flows)
        fct = net.metrics.fct_by_fid()
        assert fct[0] < fct[1] + 4.5e-3  # big flow served first
        assert net.metrics.record(0).met_deadline

    def test_terminated_flow_frees_bandwidth(self):
        flows = [
            # will be terminated: cannot meet 1ms deadline
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=5 * MBYTE,
                     deadline=1 * MSEC),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE),
        ]
        net = run_flows(flows)
        assert net.metrics.record(0).terminated
        assert net.metrics.record(1).fct < 1.5e-3


class TestMultiBottleneck:
    def test_tree_cross_traffic(self):
        """Flows through different ToRs contend only at shared links."""
        flows = [
            FlowSpec(fid=0, src="h0", dst="h3", size_bytes=200 * KBYTE),
            FlowSpec(fid=1, src="h1", dst="h2", size_bytes=200 * KBYTE),
        ]
        net = run_flows(flows, topo=SingleRootedTree())
        records = net.metrics.all_records()
        assert all(r.completed for r in records)
        # flow 1 stays inside rack 0 (h1->h2); flow 0 crosses the root;
        # they share h-ToR links only at the sources, so both finish fast
        for r in records:
            assert r.fct < 4e-3

    def test_all_flows_complete_on_tree(self):
        flows = [FlowSpec(fid=i, src=f"h{i}", dst=f"h{(i + 5) % 12}",
                          size_bytes=150 * KBYTE) for i in range(12)]
        net = run_flows(flows, topo=SingleRootedTree(), deadline=2.0)
        assert len(net.metrics.completed_records()) == 12


class TestFormalProperties:
    """§4: deadlock freedom and convergence."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_deadlock_random_workloads(self, seed):
        """Every flow finishes (or is early-terminated): no two flows wait
        on each other forever."""
        from repro.utils.rng import spawn_rng
        from repro.workload.sizes import uniform_sizes

        rng = spawn_rng(seed, "deadlock")
        n = 10
        sizes = uniform_sizes(n, 80 * KBYTE, rng=rng)
        flows = []
        for i in range(n):
            src, dst = rng.choice(12, size=2, replace=False)
            flows.append(FlowSpec(
                fid=i, src=f"h{src}", dst=f"h{dst}", size_bytes=sizes[i],
                arrival=float(rng.uniform(0, 5e-3)),
            ))
        net = run_flows(flows, topo=SingleRootedTree(), deadline=3.0)
        unresolved = net.metrics.unfinished()
        assert not unresolved, f"flows stuck: {[r.spec.fid for r in unresolved]}"

    def test_convergence_to_single_sender(self):
        """With equal-size flows sharing a bottleneck, exactly one flow
        sends at equilibrium (paper's driver definition)."""
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=2 * MBYTE + i * 1000) for i in range(3)]
        topo = SingleBottleneck(3)
        net = Network(topo, PdqStack(PdqConfig.full()))
        net.launch(flows)
        net.run(until=10e-3)  # past the convergence bound, mid-transfer
        state = net.node("sw0").protocol.state_for(
            net.link_between("sw0", "recv")
        )
        senders = [e.fid for e in state.flows if e.sending]
        assert senders == [0]
