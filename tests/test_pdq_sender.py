"""Unit tests for PDQ sender behaviour: probing, aging, criticality."""

import pytest

from repro.core.config import PdqConfig
from repro.core.stack import PdqStack
from repro.net.network import Network
from repro.net.packet import PacketKind
from repro.topology import SingleBottleneck
from repro.units import KBYTE, MBYTE, MSEC
from repro.workload.flow import FlowSpec


def make_sender(config=None, size=100 * KBYTE, deadline=None, fid=0):
    net = Network(SingleBottleneck(2), PdqStack(config or PdqConfig.full()))
    spec = FlowSpec(fid=fid, src="send0", dst="recv", size_bytes=size,
                    deadline=deadline)
    record = net.metrics.register(spec)
    src, dst = net.host("send0"), net.host("recv")
    fwd = net.router.flow_path(spec.fid, src.id, dst.id)
    rev = net.router.reverse_path(fwd)
    sender, receiver = net.stack.make_endpoints(net, spec, record, fwd, rev)
    return net, sender


class TestSchedulingHeader:
    def test_header_carries_max_rate(self):
        net, sender = make_sender()
        header = sender.make_sched_header(PacketKind.SYN)
        assert header.rate == sender.max_rate

    def test_expected_tx_includes_header_overhead(self):
        net, sender = make_sender(size=100 * KBYTE)
        # wire bytes exceed payload bytes: T > payload/raw rate
        assert sender.expected_tx_time() > 100 * KBYTE * 8 / sender.max_rate

    def test_deadline_in_header_is_absolute(self):
        net, sender = make_sender(deadline=20 * MSEC)
        header = sender.make_sched_header(PacketKind.SYN)
        assert header.deadline == pytest.approx(20 * MSEC)


class TestProbing:
    def test_paused_sender_probes(self):
        net, sender = make_sender()
        net2_flows = [
            FlowSpec(fid=10, src="send1", dst="recv", size_bytes=4 * MBYTE),
        ]
        net.launch(net2_flows)
        sender.start()
        net.run(until=5 * MSEC)
        # the large competing flow pauses someone; whoever is paused probes
        probes = sum(r.probes_sent for r in net.metrics.all_records())
        assert probes > 0

    def test_probe_interval_respects_suppression(self):
        net, sender = make_sender()
        sender.inter_probe = 4.0
        rtt = sender.rtt.srtt
        low, high = 0.7, 1.3  # jitter band
        interval = sender._probe_interval()
        assert 4 * rtt * low <= interval <= 4 * rtt * high

    def test_probe_jitter_is_deterministic_per_flow(self):
        net_a, sender_a = make_sender(fid=7)
        net_b, sender_b = make_sender(fid=7)
        assert sender_a._probe_interval() == sender_b._probe_interval()


class TestAging:
    def test_aging_reduces_advertised_tx_time(self):
        net, sender = make_sender(config=PdqConfig.full(aging_rate=1.0))
        base = sender.expected_tx_time()
        sender._waited = 0.2  # two aging time units
        aged = sender._aged_expected_tx()
        assert aged == pytest.approx(base / 4.0)

    def test_no_aging_by_default(self):
        net, sender = make_sender()
        sender._waited = 10.0
        assert sender._aged_expected_tx() == sender.expected_tx_time()


class TestCriticalityModes:
    def test_random_mode_assigns_stable_value(self):
        net, sender = make_sender(
            config=PdqConfig.full(criticality_mode="random"))
        first = sender._criticality_value()
        assert first is not None
        assert sender._criticality_value() == first

    def test_random_mode_is_deterministic_per_fid(self):
        a = make_sender(config=PdqConfig.full(criticality_mode="random"),
                        fid=3)[1]
        b = make_sender(config=PdqConfig.full(criticality_mode="random"),
                        fid=3)[1]
        assert a._criticality_value() == b._criticality_value()

    def test_estimate_mode_quantizes_sent_bytes(self):
        net, sender = make_sender(
            config=PdqConfig.full(criticality_mode="estimate"),
            size=500 * KBYTE)
        assert sender._criticality_value() == 0.0
        sender.next_offset = 60 * KBYTE
        assert sender._criticality_value() == 50 * KBYTE
        sender.next_offset = 149 * KBYTE
        assert sender._criticality_value() == 100 * KBYTE

    def test_default_mode_has_no_override(self):
        net, sender = make_sender()
        assert sender._criticality_value() is None

    def test_spec_criticality_passes_through(self):
        net = Network(SingleBottleneck(2), PdqStack())
        spec = FlowSpec(fid=0, src="send0", dst="recv",
                        size_bytes=10 * KBYTE, criticality=0.42)
        record = net.metrics.register(spec)
        src, dst = net.host("send0"), net.host("recv")
        fwd = net.router.flow_path(0, src.id, dst.id)
        rev = net.router.reverse_path(fwd)
        sender, _ = net.stack.make_endpoints(net, spec, record, fwd, rev)
        assert sender._criticality_value() == 0.42


class TestEarlyTermination:
    def test_condition_now_past_deadline(self):
        net, sender = make_sender(deadline=1 * MSEC, size=10 * KBYTE)
        sender.start()
        net.run(until=5 * MSEC)
        # either completed in time or got terminated -- but with 10KB and
        # 1ms deadline it completes
        assert net.metrics.record(0).completed

    def test_cannot_finish_terminates_immediately(self):
        net, sender = make_sender(deadline=1 * MSEC, size=10 * MBYTE)
        sender.start()
        net.run(until=1 * MSEC)
        record = net.metrics.record(0)
        assert record.terminated
        assert record.termination_reason == "early_termination:hopeless_at_start"

    def test_et_disabled_never_terminates(self):
        net, sender = make_sender(config=PdqConfig.basic(),
                                  deadline=1 * MSEC, size=10 * MBYTE)
        sender.start()
        net.run(until=2 * MSEC)
        assert not net.metrics.record(0).terminated
