"""Unit tests for the PDQ switch (Algorithms 1-3, §3.3)."""

import pytest

from repro.core.config import PdqConfig
from repro.core.stack import PdqStack
from repro.net.headers import PdqHeader
from repro.net.network import Network
from repro.net.packet import Packet, PacketKind
from repro.topology import SingleBottleneck
from repro.units import GBPS, USEC


def make_env(n_senders=4, **cfg):
    """A switch protocol instance with one egress link under test."""
    net = Network(SingleBottleneck(n_senders), PdqStack(PdqConfig.full(**cfg)))
    switch = net.node("sw0")
    link = net.link_between("sw0", "recv")
    return net, switch.protocol, link


def fwd_packet(fid, kind=PacketKind.SYN, rate=1 * GBPS, pauseby=None,
               deadline=None, expected_tx=1e-3, rtt=150 * USEC):
    header = PdqHeader(rate=rate, pauseby=pauseby, deadline=deadline,
                       expected_tx=expected_tx, rtt=rtt)
    return Packet(fid=fid, src=0, dst=1, kind=kind, size=56, sched=header)


class TestAlgorithm1:
    def test_first_flow_accepted_at_full_rate(self):
        net, proto, link = make_env()
        pkt = fwd_packet(1)
        proto.process(pkt, link)
        assert pkt.sched.pauseby is None
        assert pkt.sched.rate == pytest.approx(1 * GBPS)

    def test_second_flow_dampened_in_window(self):
        net, proto, link = make_env()
        proto.process(fwd_packet(1, expected_tx=1e-3), link)
        pkt2 = fwd_packet(2, expected_tx=2e-3)
        proto.process(pkt2, link)
        assert pkt2.sched.pauseby == proto.switch_id
        assert pkt2.sched.rate == 0.0

    def test_flow_paused_when_more_critical_committed(self):
        net, proto, link = make_env()
        state = proto.state_for(link)
        pkt1 = fwd_packet(1, expected_tx=1e-3)
        proto.process(pkt1, link)
        # commit flow 1's rate via the reverse path
        ack1 = Packet(fid=1, src=1, dst=0, kind=PacketKind.ACK, size=56,
                      sched=pkt1.sched)
        proto.process(ack1, link.reverse)
        assert state.flows.get(1).rate == pytest.approx(1 * GBPS)
        # dampening window over
        net.sim.run(until=1e-3)
        pkt2 = fwd_packet(2, expected_tx=2e-3)
        proto.process(pkt2, link)
        assert pkt2.sched.pauseby == proto.switch_id

    def test_more_critical_flow_preempts_committed(self):
        net, proto, link = make_env()
        pkt1 = fwd_packet(1, expected_tx=2e-3)
        proto.process(pkt1, link)
        ack1 = Packet(fid=1, src=1, dst=0, kind=PacketKind.ACK, size=56,
                      sched=pkt1.sched)
        proto.process(ack1, link.reverse)
        net.sim.run(until=1e-3)
        # a more critical flow gets the full rate (preemption: availbw only
        # counts flows more critical than the prober)
        pkt2 = fwd_packet(2, expected_tx=0.5e-3)
        proto.process(pkt2, link)
        assert pkt2.sched.pauseby is None
        assert pkt2.sched.rate > 0

    def test_paused_by_other_switch_removes_state(self):
        net, proto, link = make_env()
        proto.process(fwd_packet(1), link)
        assert proto.state_for(link).flows.get(1) is not None
        proto.process(fwd_packet(1, kind=PacketKind.DATA, pauseby=999), link)
        assert proto.state_for(link).flows.get(1) is None

    def test_term_removes_state(self):
        net, proto, link = make_env()
        proto.process(fwd_packet(1), link)
        proto.process(fwd_packet(1, kind=PacketKind.TERM), link)
        assert proto.state_for(link).flows.get(1) is None

    def test_rcp_fallback_for_overflow_flows(self):
        net, proto, link = make_env(min_list_capacity=2, hard_flow_limit=2,
                                    dampening=False)
        state = proto.state_for(link)
        for fid, tx in [(1, 1e-3), (2, 2e-3)]:
            pkt = fwd_packet(fid, expected_tx=tx)
            proto.process(pkt, link)
            ack = Packet(fid=fid, src=1, dst=0, kind=PacketKind.ACK,
                         size=56, sched=pkt.sched)
            proto.process(ack, link.reverse)
        # flow 3 is less critical than both: no list room -> RCP fallback.
        # the two listed flows hold the whole link, so it is paused.
        pkt3 = fwd_packet(3, expected_tx=5e-3)
        proto.process(pkt3, link)
        assert state.flows.get(3) is None
        assert pkt3.sched.pauseby == proto.switch_id
        assert 3 in state.outside

    def test_receiver_limited_rate_clamps_grant(self):
        net, proto, link = make_env()
        pkt = fwd_packet(1, rate=0.2 * GBPS)  # sender/receiver limited
        proto.process(pkt, link)
        assert pkt.sched.rate == pytest.approx(0.2 * GBPS)


class TestAlgorithm2:
    def test_availbw_subtracts_committed_rates(self):
        net, proto, link = make_env(early_start=False)
        state = proto.state_for(link)
        pkt1 = fwd_packet(1, expected_tx=1e-3)
        proto.process(pkt1, link)
        state.flows.get(1).rate = 0.6 * GBPS
        pkt2 = fwd_packet(2, expected_tx=2e-3)
        proto.process(pkt2, link)
        available, more_critical = state.availbw(state.flows.index_of(2))
        assert more_critical == pytest.approx(0.6 * GBPS)
        assert available == pytest.approx(0.4 * GBPS)

    def test_early_start_ignores_nearly_completed(self):
        net, proto, link = make_env(K=2.0)
        state = proto.state_for(link)
        # flow 1 sending, nearly completed (T < K*RTT)
        pkt1 = fwd_packet(1, expected_tx=100 * USEC, rtt=150 * USEC)
        proto.process(pkt1, link)
        state.flows.get(1).rate = 1 * GBPS
        available, _ = state.availbw(1)
        assert available == pytest.approx(1 * GBPS)

    def test_early_start_budget_bounded_by_k(self):
        net, proto, link = make_env(K=2.0, dampening=False)
        state = proto.state_for(link)
        # three nearly-completed senders of 1 RTT each: only K=2 fit the
        # budget; the third contributes its rate
        for fid in (1, 2, 3):
            pkt = fwd_packet(fid, expected_tx=150 * USEC, rtt=150 * USEC)
            proto.process(pkt, link)
            state.flows.get(fid).rate = 0.33 * GBPS
        available, _ = state.availbw(3)
        assert available == pytest.approx((1 - 0.33) * GBPS, rel=1e-6)

    def test_basic_variant_has_no_early_start(self):
        net, proto, link = make_env(early_start=False)
        state = proto.state_for(link)
        pkt1 = fwd_packet(1, expected_tx=100 * USEC, rtt=150 * USEC)
        proto.process(pkt1, link)
        state.flows.get(1).rate = 1 * GBPS
        available, _ = state.availbw(1)
        assert available == 0.0


class TestAlgorithm3:
    def test_reverse_commits_acceptance(self):
        net, proto, link = make_env()
        pkt = fwd_packet(1)
        proto.process(pkt, link)
        ack = Packet(fid=1, src=1, dst=0, kind=PacketKind.ACK, size=56,
                     sched=pkt.sched)
        proto.process(ack, link.reverse)
        entry = proto.state_for(link).flows.get(1)
        assert entry.rate == pytest.approx(1 * GBPS)
        assert entry.pauseby is None

    def test_reverse_zeroes_rate_when_paused(self):
        net, proto, link = make_env()
        pkt = fwd_packet(1)
        proto.process(pkt, link)
        header = pkt.sched
        header.pauseby = proto.switch_id  # pretend we paused it downstream? no: by us
        ack = Packet(fid=1, src=1, dst=0, kind=PacketKind.ACK, size=56,
                     sched=header)
        proto.process(ack, link.reverse)
        assert header.rate == 0.0
        assert proto.state_for(link).flows.get(1).pauseby == proto.switch_id

    def test_reverse_paused_by_other_removes_state(self):
        net, proto, link = make_env()
        pkt = fwd_packet(1)
        proto.process(pkt, link)
        header = pkt.sched
        header.pauseby = 999
        ack = Packet(fid=1, src=1, dst=0, kind=PacketKind.ACK, size=56,
                     sched=header)
        proto.process(ack, link.reverse)
        assert proto.state_for(link).flows.get(1) is None
        assert header.rate == 0.0

    def test_suppressed_probing_raises_interval_with_index(self):
        net, proto, link = make_env(dampening=False)
        headers = {}
        for fid, tx in [(1, 1e-3), (2, 2e-3), (3, 3e-3)]:
            pkt = fwd_packet(fid, expected_tx=tx)
            proto.process(pkt, link)
            headers[fid] = pkt.sched
        ack3 = Packet(fid=3, src=1, dst=0, kind=PacketKind.ACK, size=56,
                      sched=headers[3])
        proto.process(ack3, link.reverse)
        assert headers[3].inter_probe == pytest.approx(
            max(1.0, 0.2 * 2)
        )

    def test_no_suppressed_probing_when_disabled(self):
        net, proto, link = make_env(suppressed_probing=False,
                                    dampening=False)
        headers = {}
        for fid, tx in [(1, 1e-3), (2, 2e-3), (3, 3e-3)]:
            pkt = fwd_packet(fid, expected_tx=tx)
            proto.process(pkt, link)
            headers[fid] = pkt.sched
        ack = Packet(fid=3, src=1, dst=0, kind=PacketKind.ACK, size=56,
                     sched=headers[3])
        proto.process(ack, link.reverse)
        assert headers[3].inter_probe == 1.0


class TestRateController:
    def test_capacity_drops_with_queue(self):
        net, proto, link = make_env()
        state = proto.state_for(link)
        controller = state.rate_controller
        # stuff the queue and force an update
        from repro.net.packet import Packet as P

        for _ in range(20):
            link.queue.offer(P(fid=0, src=0, dst=1, kind=PacketKind.DATA,
                               size=1500, payload=1444))
        controller.start()
        net.sim.run(until=1e-3)
        assert controller.capacity < link.rate_bps

    def test_capacity_restores_when_queue_drains(self):
        net, proto, link = make_env()
        controller = proto.state_for(link).rate_controller
        controller.start()
        net.sim.run(until=2e-3)
        assert controller.capacity == pytest.approx(link.rate_bps)

    def test_r_pdq_slicing(self):
        net, proto, link = make_env()
        controller = proto.state_for(link).rate_controller
        controller.set_pdq_rate(0.5 * GBPS)
        controller.start()
        net.sim.run(until=2e-3)
        assert controller.capacity == pytest.approx(0.5 * GBPS)

    def test_rejects_negative_r_pdq(self):
        net, proto, link = make_env()
        with pytest.raises(ValueError):
            proto.state_for(link).rate_controller.set_pdq_rate(-1.0)
