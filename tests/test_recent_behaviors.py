"""Tests for behaviours added while calibrating against the paper's
dynamics: BCube address-based routing, source-routed paths, search
capping, elephant truncation, D3 allocation ordering, feedback floors."""

import pytest

from repro.core.stack import PdqStack
from repro.errors import TopologyError
from repro.experiments.search import binary_search_max
from repro.net.network import Network
from repro.topology import BCube, SingleBottleneck
from repro.transport.rcp import FEEDBACK_RTTS, floor_rate
from repro.units import GBPS, KBYTE, MBYTE
from repro.workload.vl2 import vl2_flow_sizes


class TestBCubeDisjointPaths:
    def test_full_hamming_distance_gives_k_plus_1_paths(self):
        topo = BCube(2, 3)
        paths = topo.disjoint_paths("h0", "h15")
        assert len(paths) == 4

    def test_paths_are_node_disjoint_except_endpoints(self):
        topo = BCube(2, 3)
        paths = topo.disjoint_paths("h0", "h15")
        interiors = [set(p[1:-1]) for p in paths]
        for i in range(len(interiors)):
            for j in range(i + 1, len(interiors)):
                assert not (interiors[i] & interiors[j])

    def test_paths_start_and_end_correctly(self):
        topo = BCube(2, 3)
        for path in topo.disjoint_paths("h3", "h12"):
            assert path[0] == "h3"
            assert path[-1] == "h12"

    def test_paths_follow_existing_links(self):
        topo = BCube(2, 3)
        for path in topo.disjoint_paths("h1", "h14"):
            for a, b in zip(path, path[1:], strict=False):
                assert topo.graph.has_edge(a, b), (a, b)

    def test_partial_hamming_distance(self):
        topo = BCube(2, 3)
        # h0 (0000) -> h1 (0001): one differing digit, one path
        assert len(topo.disjoint_paths("h0", "h1")) == 1

    def test_same_server_rejected(self):
        with pytest.raises(TopologyError):
            BCube(2, 3).disjoint_paths("h0", "h0")


class TestLinksForPath:
    def test_resolves_named_walk(self):
        net = Network(BCube(2, 2), PdqStack())
        names = BCube(2, 2).disjoint_paths("h0", "h7")[0]
        links = net.links_for_path(names)
        assert len(links) == len(names) - 1
        assert links[0].src.name == "h0"
        assert links[-1].dst.name == "h7"

    def test_rejects_trivial_path(self):
        net = Network(SingleBottleneck(1), PdqStack())
        with pytest.raises(TopologyError):
            net.links_for_path(["recv"])


class TestSearchCapping:
    def test_grow_false_caps_at_hi(self):
        assert binary_search_max(lambda n: True, lo=1, hi=8,
                                 grow=False) == 8

    def test_grow_false_still_searches_below_hi(self):
        assert binary_search_max(lambda n: n <= 5, lo=1, hi=8,
                                 grow=False) == 5


class TestVl2Cap:
    def test_cap_truncates_elephants(self):
        sizes = vl2_flow_sizes(5000, rng=1, cap_bytes=1 * MBYTE)
        assert max(sizes) <= 1 * MBYTE

    def test_cap_preserves_mice(self):
        capped = vl2_flow_sizes(2000, rng=2, cap_bytes=1 * MBYTE)
        free = vl2_flow_sizes(2000, rng=2)
        assert sum(1 for s in capped if s < 40 * KBYTE) == sum(
            1 for s in free if s < 40 * KBYTE
        )


class TestFeedbackFloor:
    def test_floor_bounds_feedback_latency(self):
        rtt = 150e-6
        rate = floor_rate(rtt)
        gap = 1500 * 8 / rate  # pacing gap at the floor
        assert gap <= FEEDBACK_RTTS * rtt * 1.001

    def test_floor_scales_inversely_with_rtt(self):
        assert floor_rate(150e-6) > floor_rate(300e-6)


class TestD3AllocationTable:
    def _state(self):
        from repro.transport.d3 import D3LinkState, D3Stack

        net = Network(SingleBottleneck(4), D3Stack())
        link = net.link_between("sw0", "recv")
        return D3LinkState(net.node("sw0").protocol, link)

    def test_arrival_order_wins(self):
        state = self._state()
        # flow 1 arrives first wanting 0.9G; flow 2 arrives later wanting
        # 0.9G: only the first is satisfiable
        state.flows = {
            1: (0.0, 1.0, 0.9 * GBPS),
            2: (0.5, 1.0, 0.9 * GBPS),
        }
        state._allocate()
        assert state.grants[1] >= 0.9 * GBPS
        assert state.grants[2] < 0.3 * GBPS

    def test_fair_share_added_on_top(self):
        state = self._state()
        state.fair_share = 0.1 * GBPS
        state.flows = {1: (0.0, 1.0, 0.0), 2: (0.1, 1.0, 0.0)}
        state._allocate()
        assert state.grants[1] == pytest.approx(0.1 * GBPS)
        assert state.grants[2] == pytest.approx(0.1 * GBPS)

    def test_grants_never_below_floor(self):
        state = self._state()
        state.fair_share = 0.0
        state.flows = {i: (float(i), 1.0, 1 * GBPS) for i in range(5)}
        state._allocate()
        assert all(g > 0 for g in state.grants.values())


class TestMpdqSourceRouting:
    def test_subflows_use_disjoint_first_hops(self):
        from repro.core.multipath import MpdqStack
        from repro.workload.flow import FlowSpec

        net = Network(BCube(2, 3), MpdqStack(n_subflows=4))
        spec = FlowSpec(fid=0, src="h0", dst="h15", size_bytes=400 * KBYTE)
        record = net.metrics.register(spec)
        src = net.host("h0")
        fwd = net.router.flow_path(0, src.id, net.host("h15").id)
        rev = net.router.reverse_path(fwd)
        coordinator, _ = net.stack.make_endpoints(net, spec, record, fwd, rev)
        first_hops = {s.path[0].dst.name for s in coordinator.senders}
        assert len(first_hops) == 4  # one NIC per subflow
