"""Tests for ECMP routing, path pinning, and packet/flow-level agreement."""

import pytest

from repro.core.stack import PdqStack
from repro.errors import RoutingError
from repro.flowsim.paths import GraphRouter
from repro.net.network import Network
from repro.net.routing import ecmp_hash
from repro.topology import BCube, FatTree, SingleRootedTree


@pytest.fixture(scope="module")
def fattree_net():
    return Network(FatTree(4), PdqStack())


class TestEcmpHash:
    def test_deterministic(self):
        assert ecmp_hash(42, 7) == ecmp_hash(42, 7)

    def test_varies_with_flow(self):
        values = {ecmp_hash(fid, 3) % 4 for fid in range(64)}
        assert len(values) > 1

    def test_nonnegative(self):
        for fid in range(100):
            assert ecmp_hash(fid, fid * 3) >= 0


class TestRouter:
    def test_path_connects_endpoints(self, fattree_net):
        net = fattree_net
        src, dst = net.node("h0"), net.node("h15")
        path = net.router.flow_path(1, src.id, dst.id)
        assert path[0].src is src
        assert path[-1].dst is dst
        for a, b in zip(path, path[1:], strict=False):
            assert a.dst is b.src

    def test_path_is_shortest(self, fattree_net):
        net = fattree_net
        src, dst = net.node("h0"), net.node("h15")
        # inter-pod in a fat-tree: host-edge-agg-core-agg-edge-host = 6 links
        assert len(net.router.flow_path(1, src.id, dst.id)) == 6
        assert net.router.hop_count(src.id, dst.id) == 6

    def test_path_pinned_per_flow(self, fattree_net):
        net = fattree_net
        src, dst = net.node("h0"), net.node("h15")
        assert net.router.flow_path(5, src.id, dst.id) is net.router.flow_path(
            5, src.id, dst.id
        )

    def test_different_flows_spread_over_paths(self, fattree_net):
        net = fattree_net
        src, dst = net.node("h0"), net.node("h15")
        cores = set()
        for fid in range(64):
            path = net.router.flow_path(fid, src.id, dst.id)
            cores.add(path[2].dst.name)  # the core switch
        assert len(cores) > 1  # ECMP actually uses the path diversity

    def test_reverse_path_is_exact_mirror(self, fattree_net):
        net = fattree_net
        src, dst = net.node("h0"), net.node("h15")
        fwd = net.router.flow_path(9, src.id, dst.id)
        rev = net.router.reverse_path(fwd)
        assert [lk.reverse for lk in rev] == list(reversed(fwd))

    def test_no_route_to_self(self, fattree_net):
        net = fattree_net
        h0 = net.node("h0")
        with pytest.raises(RoutingError):
            net.router.flow_path(1, h0.id, h0.id)

    def test_bcube_paths_may_relay_through_hosts(self):
        net = Network(BCube(2, 3), PdqStack())
        src, dst = net.node("h0"), net.node("h3")
        # h0 (0000) to h3 (0011) differ in two digits: 4-link path via a
        # relay server
        path = net.router.flow_path(1, src.id, dst.id)
        assert len(path) == 4
        relay_names = {link.dst.name for link in path[:-1]}
        assert any(name.startswith("h") for name in relay_names)


class TestGraphRouterAgreement:
    """The flow-level GraphRouter must pick the same paths as the
    packet-level Router (Fig 8's cross-validation relies on it)."""

    @pytest.mark.parametrize("topo_factory", [
        lambda: FatTree(4),
        lambda: SingleRootedTree(),
        lambda: BCube(2, 2),
    ])
    def test_same_paths_both_levels(self, topo_factory):
        topo = topo_factory()
        net = Network(topo, PdqStack())
        graph_router = GraphRouter(topo)
        hosts = topo.hosts
        for fid, (src, dst) in enumerate(
            [(hosts[0], hosts[-1]), (hosts[1], hosts[2]),
             (hosts[0], hosts[len(hosts) // 2])]
        ):
            if src == dst:
                continue
            pkt_path = net.router.flow_path(
                fid, net.node(src).id, net.node(dst).id
            )
            pkt_names = [(lk.src.name, lk.dst.name) for lk in pkt_path]
            flow_path = graph_router.flow_path(fid, src, dst)
            assert pkt_names == list(flow_path)

    def test_hop_count_agrees(self):
        topo = FatTree(4)
        net = Network(topo, PdqStack())
        graph_router = GraphRouter(topo)
        assert graph_router.hop_count("h0", "h15") == net.router.hop_count(
            net.node("h0").id, net.node("h15").id
        )

    def test_capacities_cover_all_directed_edges(self):
        topo = SingleRootedTree()
        caps = GraphRouter(topo).capacities()
        assert len(caps) == 2 * topo.graph.number_of_edges()
        assert all(v > 0 for v in caps.values())


class TestEdgeIndex:
    """The dense directed-edge index contract (see
    Topology.directed_edge_index)."""

    def test_ids_are_dense_and_paired(self):
        topo = FatTree(4)
        index = topo.directed_edge_index()
        n = 2 * topo.graph.number_of_edges()
        assert sorted(index.values()) == list(range(n))
        for (a, b), eid in index.items():
            reverse = index[(b, a)]
            # forward/reverse ids differ only in the low bit
            assert reverse // 2 == eid // 2
            assert reverse != eid

    def test_index_is_cached_and_invalidated_on_add_link(self):
        topo = SingleRootedTree()
        first = topo.directed_edge_index()
        assert topo.directed_edge_index() is first
        topo.add_switch("extra_sw")
        topo.add_link("h0", "extra_sw")
        second = topo.directed_edge_index()
        assert second is not first
        assert len(second) == len(first) + 2

    def test_flow_path_ids_match_named_paths(self):
        topo = FatTree(4)
        router = GraphRouter(topo)
        index = router.edge_index
        hosts = topo.hosts
        for fid in range(6):
            named = router.flow_path(fid, hosts[0], hosts[-1])
            ids = router.flow_path_ids(fid, hosts[0], hosts[-1])
            assert ids == tuple(index[edge] for edge in named)

    def test_capacity_vector_matches_capacity_dict(self):
        topo = FatTree(4)
        router = GraphRouter(topo)
        vector = router.capacity_vector()
        caps = router.capacities()
        assert len(vector) == len(caps)
        for edge, eid in router.edge_index.items():
            assert vector[eid] == caps[edge]
