"""Tests for the reference schedulers and optimal bounds."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.centralized import centralized_rates
from repro.sched.fluid import (
    d3_fluid_schedule,
    deadline_misses,
    fair_sharing_completions,
    serial_completions,
)
from repro.sched.optimal import (
    max_ontime_subset,
    optimal_application_throughput,
    sjf_completion_times,
    srpt_mean_fct,
)
from repro.units import GBPS


class TestCentralized:
    def test_most_critical_gets_path_minimum(self):
        caps = {("a", "b"): 1 * GBPS, ("b", "c"): 0.4 * GBPS}
        flows = [(0, 1.0, [("a", "b"), ("b", "c")], 1 * GBPS)]
        rates = centralized_rates(flows, caps)
        assert rates[0] == pytest.approx(0.4 * GBPS)

    def test_residual_goes_to_next_flow(self):
        caps = {("a", "b"): 1 * GBPS}
        flows = [
            (0, 1.0, [("a", "b")], 0.6 * GBPS),
            (1, 2.0, [("a", "b")], 1 * GBPS),
        ]
        rates = centralized_rates(flows, caps)
        assert rates[0] == pytest.approx(0.6 * GBPS)
        assert rates[1] == pytest.approx(0.4 * GBPS)

    def test_order_by_expected_time_then_fid(self):
        caps = {("a", "b"): 1 * GBPS}
        flows = [
            (5, 1.0, [("a", "b")], 1 * GBPS),
            (2, 1.0, [("a", "b")], 1 * GBPS),
        ]
        rates = centralized_rates(flows, caps)
        assert rates[2] == pytest.approx(1 * GBPS)
        assert rates[5] == 0.0

    @given(st.lists(st.tuples(st.floats(0.01, 10.0),
                              st.floats(1e8, 1e9)),
                    min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_property_capacity_never_exceeded(self, specs):
        caps = {("a", "b"): 1 * GBPS}
        flows = [(i, t, [("a", "b")], m) for i, (t, m) in enumerate(specs)]
        rates = centralized_rates(flows, caps)
        assert sum(rates.values()) <= 1 * GBPS * (1 + 1e-9)


class TestMooreHodgson:
    def test_keeps_all_when_feasible(self):
        jobs = [(1.0, 2.0), (1.0, 3.0)]
        assert max_ontime_subset(jobs) == [0, 1]

    def test_drops_longest_when_infeasible(self):
        jobs = [(5.0, 5.0), (1.0, 5.5), (1.0, 6.0)]
        kept = max_ontime_subset(jobs)
        assert 0 not in kept
        assert kept == [1, 2]

    def test_paper_example_all_feasible(self):
        # Fig 1: sizes 1,2,3 with deadlines 1,4,6 all fit under EDF
        assert max_ontime_subset([(1, 1), (2, 4), (3, 6)]) == [0, 1, 2]

    def test_rejects_negative_processing(self):
        with pytest.raises(ValueError):
            max_ontime_subset([(-1.0, 1.0)])

    def _brute_force(self, jobs):
        best = 0
        n = len(jobs)
        for mask in range(1 << n):
            subset = [jobs[i] for i in range(n) if mask >> i & 1]
            subset.sort(key=lambda j: j[1])
            elapsed, ok = 0.0, True
            for p, d in subset:
                elapsed += p
                if elapsed > d + 1e-12:
                    ok = False
                    break
            if ok:
                best = max(best, len(subset))
        return best

    @given(st.lists(st.tuples(st.floats(0.1, 5.0), st.floats(0.1, 20.0)),
                    min_size=1, max_size=9))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_brute_force(self, jobs):
        assert len(max_ontime_subset(jobs)) == self._brute_force(jobs)


class TestOptimalBounds:
    def test_application_throughput(self):
        # 2 flows, only one fits before its deadline
        sizes = [1_000_000, 1_000_000]
        deadlines = [0.009, 0.009]
        tput = optimal_application_throughput(sizes, deadlines, 1 * GBPS)
        assert tput == 0.5

    def test_sjf_completion_times(self):
        times = sjf_completion_times([2000, 1000], 8000.0)
        # 1000B first: done at 1s; then 2000B: done at 3s
        assert times == [3.0, 1.0]

    def test_srpt_simultaneous_equals_sjf_mean(self):
        sizes = [3000, 1000, 2000]
        flows = [(0.0, s) for s in sizes]
        srpt = srpt_mean_fct(flows, 8000.0)
        sjf = sum(sjf_completion_times(sizes, 8000.0)) / 3
        assert srpt == pytest.approx(sjf)

    def test_srpt_preempts_for_short_arrival(self):
        # long job at t=0 (10s of work), short job (1s) arrives at t=1
        flows = [(0.0, 10_000), (1.0, 1_000)]
        mean_fct = srpt_mean_fct(flows, 8000.0)
        # short: finishes at t=2 (fct 1); long: 10s work + 1s preempted = 11
        assert mean_fct == pytest.approx((11.0 + 1.0) / 2)

    @given(st.lists(st.tuples(st.floats(0, 10), st.integers(100, 100_000)),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_srpt_not_worse_than_fifo(self, flows):
        rate = 1e6
        srpt = srpt_mean_fct(flows, rate)
        # FIFO serial schedule in arrival order
        now, total = 0.0, 0.0
        for arrival, size in sorted(flows):
            now = max(now, arrival) + size * 8 / rate
            total += now - arrival
        fifo = total / len(flows)
        assert srpt <= fifo + 1e-9


class TestFig1Fluid:
    def test_fair_sharing_matches_paper(self):
        assert fair_sharing_completions([1, 2, 3]) == [3.0, 5.0, 6.0]

    def test_sjf_matches_paper(self):
        assert serial_completions([1, 2, 3], [0, 1, 2]) == [1.0, 3.0, 6.0]

    def test_every_flow_weakly_better_under_sjf(self):
        """Paper §2.1: under SJF no flow finishes later than under fair
        sharing (for this example)."""
        fair = fair_sharing_completions([1, 2, 3])
        sjf = serial_completions([1, 2, 3], [0, 1, 2])
        assert all(s <= f for s, f in zip(sjf, fair, strict=True))

    def test_d3_only_edf_order_succeeds(self):
        flows = [(1.0, 1.0), (2.0, 4.0), (3.0, 6.0)]
        deadlines = [1.0, 4.0, 6.0]
        outcomes = {}
        for order in itertools.permutations(range(3)):
            completions = d3_fluid_schedule(flows, order)
            outcomes[order] = deadline_misses(completions, deadlines)
        assert outcomes[(0, 1, 2)] == 0  # fA;fB;fC (EDF order) works
        assert sum(1 for m in outcomes.values() if m > 0) == 5

    def test_fair_sharing_deadline_misses_match_paper(self):
        fair = fair_sharing_completions([1, 2, 3])
        misses = deadline_misses(dict(enumerate(fair)), [1.0, 4.0, 6.0])
        assert misses == 2  # fA and fB miss (paper §2.1)

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_property_fair_sharing_work_conserving(self, sizes):
        completions = fair_sharing_completions(sizes)
        assert max(completions) == pytest.approx(sum(sizes))
