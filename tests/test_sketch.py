"""Tests for the mergeable quantile sketch (repro.utils.sketch)."""

import math

import pytest

from repro.errors import ExperimentError
from repro.utils.rng import spawn_rng
from repro.utils.sketch import QuantileSketch
from repro.utils.stats import percentile


def _exact(values, q):
    return percentile(list(values), q * 100.0)


class TestBasics:
    def test_empty_sketch_rejects_queries(self):
        sketch = QuantileSketch()
        with pytest.raises(ExperimentError):
            sketch.quantile(0.5)

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(3.5)
        assert sketch.quantile(0.0) == 3.5
        assert sketch.quantile(0.5) == 3.5
        assert sketch.quantile(1.0) == 3.5

    def test_extremes_are_exact(self):
        """q=0 and q=1 come from tracked min/max, not the compacted
        levels, so they survive any amount of compaction exactly."""
        sketch = QuantileSketch(k=8)
        values = [float(i) for i in range(10_000)]
        for v in values:
            sketch.add(v)
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 9_999.0

    def test_small_input_is_exact(self):
        """Below the compaction threshold nothing is dropped: queries
        return the retained value at the ceiling rank (the sketch never
        interpolates between observations)."""
        sketch = QuantileSketch(k=200)
        for v in (5, 1, 9, 3, 7):
            sketch.add(float(v))
        expected = {0.1: 1.0, 0.25: 3.0, 0.5: 5.0, 0.75: 7.0, 0.9: 9.0}
        for q, want in expected.items():
            assert sketch.quantile(q) == want

    def test_rejects_bad_quantile(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ExperimentError):
            sketch.quantile(-0.1)
        with pytest.raises(ExperimentError):
            sketch.quantile(1.5)


class TestAccuracy:
    """Rank error of a KLL-style sketch with k=200 stays well under 1%;
    we assert the *value* at p50/p95/p99 lands within the exact values
    at nearby ranks (rank-error tolerance, not value tolerance, since
    heavy-tailed values explode any relative-value bound)."""

    def _assert_close_in_rank(self, sketch, values, q, tol=0.015):
        got = sketch.quantile(q)
        lo = _exact(values, max(0.0, q - tol))
        hi = _exact(values, min(1.0, q + tol))
        assert lo <= got <= hi, (
            f"q={q}: {got} outside rank band [{lo}, {hi}]"
        )

    def test_lognormal(self):
        rng = spawn_rng(7, "test:sketch:lognormal")
        values = rng.lognormal(mean=0.0, sigma=2.0, size=50_000).tolist()
        sketch = QuantileSketch(k=200)
        for v in values:
            sketch.add(v)
        for q in (0.5, 0.95, 0.99):
            self._assert_close_in_rank(sketch, values, q)

    def test_pareto(self):
        rng = spawn_rng(8, "test:sketch:pareto")
        values = (1.0 + rng.pareto(1.1, size=50_000)).tolist()
        sketch = QuantileSketch(k=200)
        for v in values:
            sketch.add(v)
        for q in (0.5, 0.95, 0.99):
            self._assert_close_in_rank(sketch, values, q)


class TestMerge:
    def test_merge_matches_single_sketch_rank_error(self):
        """Ten shard sketches merged answer within the same rank band as
        the exact distribution — the property the campaign layer needs to
        aggregate per-scenario sketches."""
        rng = spawn_rng(9, "test:sketch:merge")
        values = rng.lognormal(mean=0.0, sigma=1.5, size=40_000).tolist()
        shards = [QuantileSketch(k=200) for _ in range(10)]
        for i, v in enumerate(values):
            shards[i % 10].add(v)
        merged = shards[0]
        for other in shards[1:]:
            merged.merge(other)
        assert merged.n == len(values)
        for q in (0.5, 0.95, 0.99):
            got = merged.quantile(q)
            lo = _exact(values, max(0.0, q - 0.02))
            hi = _exact(values, min(1.0, q + 0.02))
            assert lo <= got <= hi

    def test_merge_empty_is_identity(self):
        a = QuantileSketch()
        for v in (1.0, 2.0, 3.0):
            a.add(v)
        a.merge(QuantileSketch())
        assert a.n == 3
        assert a.quantile(0.5) == 2.0

    def test_merge_preserves_extremes(self):
        a, b = QuantileSketch(k=8), QuantileSketch(k=8)
        for i in range(1000):
            a.add(float(i))
            b.add(float(i + 500))
        a.merge(b)
        assert a.quantile(0.0) == 0.0
        assert a.quantile(1.0) == 1499.0


class TestSpace:
    def test_memory_is_logarithmic_in_n(self):
        """Total retained values grow ~k*log2(n/k), not n."""
        sketch = QuantileSketch(k=200)
        for i in range(200_000):
            sketch.add(float(i % 9973))
        retained = sum(len(level) for level in sketch.levels)
        bound = 2 * 200 * (math.log2(200_000 / 200) + 2)
        assert retained < bound


class TestSerialization:
    def test_round_trip(self):
        sketch = QuantileSketch(k=64)
        rng = spawn_rng(10, "test:sketch:serialize")
        for v in rng.exponential(1.0, size=5_000).tolist():
            sketch.add(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.n == sketch.n
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_to_dict_is_json_plain(self):
        import json

        sketch = QuantileSketch()
        sketch.add(1.25)
        payload = json.dumps(sketch.to_dict())
        assert "1.25" in payload
