"""Open-system streaming: workload generators, memory-bounded metrics,
incremental admission in both engines, and the campaign wiring.

The closed-batch path is pinned elsewhere (test_flowsim_parity pins the
fluid trajectories bit-identically); here we assert the streaming path
(1) produces the same physics as materializing the same stream into a
closed batch, (2) keeps memory O(concurrency) rather than O(flows), and
(3) serializes through the existing collector schema untouched.
"""

import json
import tracemalloc

import pytest

from repro.campaign import (
    CampaignRunner,
    ResultStore,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.campaign.engines import make_model, run_packet_level
from repro.campaign.registry import build_workload, workload_kinds
from repro.errors import ExperimentError, WorkloadError
from repro.flowsim.engine import FlowLevelSimulation
from repro.metrics import MetricsCollector, StreamingMetricsCollector
from repro.metrics.streaming import streaming_collector
from repro.metrics.summary import SummaryStats
from repro.topology.single_rooted import SingleRootedTree
from repro.units import GBPS, KBYTE
from repro.workload.flow import FlowSpec
from repro.workload.open_system import (
    host_access_bps,
    log_uniform_band_mean,
    open_system,
    vl2_mixture_mean,
)
from repro.workload.stream import FlowStream


def _topo():
    return SingleRootedTree(n_tors=4, servers_per_tor=3)


def _stream(seed=7, duration=0.1, rate=2000.0, **kw):
    return open_system(_topo(), seed, duration=duration,
                       rate_per_sec=rate, size_scale=0.01, **kw)


# -- FlowStream ---------------------------------------------------------------------


class TestFlowStream:
    def test_take_until_is_incremental_and_ordered(self):
        stream = _stream()
        first = stream.take_until(0.01)
        second = stream.take_until(0.02)
        assert all(s.arrival <= 0.01 for s in first)
        assert all(0.01 < s.arrival <= 0.02 for s in second)
        arrivals = [s.arrival for s in first + second]
        assert arrivals == sorted(arrivals)

    def test_peek_does_not_consume(self):
        stream = _stream()
        peeked = stream.peek_arrival()
        batch = stream.take_until(peeked)
        assert batch and batch[0].arrival == peeked

    def test_materialize_equals_incremental_drain(self):
        flows = _stream().materialize()
        stream = _stream()
        drained = []
        cutoff = 0.0
        while not stream.exhausted:
            cutoff += 0.005
            drained.extend(stream.take_until(cutoff))
        assert [f.fid for f in drained] == [f.fid for f in flows]
        assert [f.arrival for f in drained] == [f.arrival for f in flows]

    def test_fids_are_sequential(self):
        flows = _stream().materialize()
        assert [f.fid for f in flows] == list(range(len(flows)))

    def test_rejects_time_travel(self):
        def gen():
            yield FlowSpec(fid=0, src="h0", dst="h1",
                           size_bytes=KBYTE, arrival=1.0)
            yield FlowSpec(fid=1, src="h0", dst="h1",
                           size_bytes=KBYTE, arrival=0.5)

        stream = FlowStream(gen(), horizon=2.0)
        with pytest.raises(WorkloadError, match="non-decreasing"):
            stream.take_until(2.0)


# -- open_system generator ----------------------------------------------------------


class TestOpenSystem:
    def test_deterministic_per_seed(self):
        a = _stream(seed=3).materialize()
        b = _stream(seed=3).materialize()
        c = _stream(seed=4).materialize()
        assert [(f.arrival, f.size_bytes, f.src, f.dst) for f in a] == \
               [(f.arrival, f.size_bytes, f.src, f.dst) for f in b]
        assert a and [f.size_bytes for f in a] != [f.size_bytes for f in c[:len(a)]]

    def test_arrivals_inside_window_and_horizon_covers_drain(self):
        stream = _stream(duration=0.2, drain=0.5)
        flows = stream.materialize()
        assert all(0.0 <= f.arrival < 0.2 for f in flows)
        assert stream.horizon == pytest.approx(0.7)

    def test_src_dst_never_equal(self):
        flows = _stream(seed=11).materialize()
        assert all(f.src != f.dst for f in flows)

    def test_target_load_sets_rate_from_mixture_mean(self):
        topo = _topo()
        load = 0.3
        stream = open_system(topo, 1, duration=0.1, target_load=load,
                             size_scale=0.01)
        mean_size = vl2_mixture_mean(scale=0.01, cap_bytes=1_000_000)
        rate = load * host_access_bps(topo) / (8.0 * mean_size)
        assert stream.expected_flows == int(rate * 0.1)

    def test_heavy_tailed_arrivals_and_sizes(self):
        stream = open_system(_topo(), 5, duration=0.2, rate_per_sec=2000.0,
                             arrival="pareto", sizes="pareto",
                             mean_size_bytes=50 * KBYTE)
        flows = stream.materialize()
        assert len(flows) > 50
        sizes = [f.size_bytes for f in flows]
        assert max(sizes) > 10 * (sum(sizes) / len(sizes))

    def test_deadlines_only_on_short_flows(self):
        stream = _stream(seed=9, mean_deadline=0.02)
        flows = stream.materialize()
        with_deadline = [f for f in flows if f.deadline is not None]
        assert with_deadline
        cutoff = max(f.size_bytes for f in with_deadline)
        no_deadline_small = [
            f for f in flows
            if f.deadline is None and f.size_bytes <= cutoff
        ]
        # the deadline cutoff partitions by size (scaled SHORT_FLOW_CUTOFF)
        assert all(f.size_bytes > 40 * KBYTE * 0.01 or f.deadline is not None
                   for f in flows)

    def test_validation(self):
        topo = _topo()
        with pytest.raises(WorkloadError):
            open_system(topo, 1, duration=0.1)  # neither rate nor load
        with pytest.raises(WorkloadError):
            open_system(topo, 1, duration=0.1, rate_per_sec=10.0,
                        target_load=0.5)  # both
        with pytest.raises(WorkloadError):
            open_system(topo, 1, duration=-1.0, rate_per_sec=10.0)
        with pytest.raises(WorkloadError):
            open_system(topo, 1, duration=0.1, rate_per_sec=10.0,
                        arrival="bursty")
        with pytest.raises(WorkloadError):
            open_system(topo, 1, duration=0.1, rate_per_sec=10.0,
                        sizes="cauchy")

    def test_band_mean_closed_forms(self):
        # E[X] for X ~ log-uniform on [lo, hi] is (hi-lo)/ln(hi/lo)
        import math
        lo, hi = 10.0, 100.0
        assert log_uniform_band_mean(lo, hi) == pytest.approx(
            (hi - lo) / math.log(hi / lo))
        # capping at hi is a no-op; capping below lo clamps to the cap
        assert log_uniform_band_mean(lo, hi, cap=hi) == pytest.approx(
            log_uniform_band_mean(lo, hi))
        assert log_uniform_band_mean(lo, hi, cap=5.0) == pytest.approx(5.0)

    def test_host_access_bps_sums_host_links(self):
        assert host_access_bps(_topo()) == pytest.approx(12 * GBPS)

    def test_registered_as_campaign_kind(self):
        assert "open_system" in workload_kinds()
        stream = build_workload(
            "open_system", _topo(), 3,
            {"duration": 0.05, "rate_per_sec": 1000.0, "size_scale": 0.01},
        )
        assert isinstance(stream, FlowStream)
        assert stream.materialize()


# -- streaming collector ------------------------------------------------------------


def _run_closed(flows, collector=None):
    sim = FlowLevelSimulation(_topo(), make_model("RCP"), header_bytes=44,
                              metrics=collector)
    sim.run(flows, deadline=5.0)
    return sim.metrics


class TestStreamingCollector:
    def test_accumulators_match_exact_collector(self):
        flows = _stream(seed=21).materialize()
        exact = _run_closed(flows)
        streaming = _run_closed(flows, streaming_collector(True, seed=21))
        assert len(streaming) == len(exact)
        assert streaming.completed_count() == len(exact.completed_records())
        assert streaming.mean_fct() == pytest.approx(exact.mean_fct())
        assert streaming.max_fct() == pytest.approx(exact.max_fct())
        # sketch percentile within a couple ranks of the exact one
        n = len(flows)
        got = streaming.fct_percentile(95)
        fcts = sorted(r.fct for r in exact.completed_records())
        lo_idx = max(0, int(0.93 * n) - 1)
        hi_idx = min(n - 1, int(0.97 * n) + 1)
        assert fcts[lo_idx] <= got <= fcts[hi_idx]

    def test_memory_is_bounded_by_reservoir_not_flows(self):
        flows = _stream(seed=22, duration=0.3).materialize()
        collector = streaming_collector({"reservoir": 50}, seed=22)
        _run_closed(flows, collector)
        assert len(collector.records) == 0  # every resolved flow evicted
        assert len(collector.reservoir) == 50
        assert len(collector) == len(flows)

    def test_reservoir_deterministic_under_pinned_seed(self):
        flows = _stream(seed=23).materialize()
        picks = []
        for _ in range(2):
            collector = streaming_collector({"reservoir": 20}, seed=23)
            _run_closed(flows, collector)
            picks.append(sorted(r.spec.fid for r in collector.reservoir))
        assert picks[0] == picks[1]
        other = streaming_collector({"reservoir": 20}, seed=24)
        _run_closed(flows, other)
        assert sorted(r.spec.fid for r in other.reservoir) != picks[0]

    def test_summary_stats_uses_accumulators(self):
        flows = _stream(seed=25).materialize()
        streaming = _run_closed(flows, streaming_collector(True, seed=25))
        stats = SummaryStats.from_collector(streaming)
        assert stats.n_flows == len(flows)
        assert stats.n_completed == streaming.n_completed
        assert stats.mean_fct == pytest.approx(streaming.mean_fct())

    def test_late_hooks_count_instead_of_raising(self):
        collector = streaming_collector(True, seed=1)
        spec = FlowSpec(fid=0, src="a", dst="b", size_bytes=KBYTE)
        collector.register(spec)
        collector.on_start(0, 0.0)
        collector.on_complete(0, 1.0)  # folds + evicts
        collector.on_bytes(0, 100)
        collector.on_retransmit(0)
        collector.on_terminated(0, 2.0, "late")
        assert collector.late_events == 3
        assert collector.n_completed == 1

    def test_options_validation(self):
        with pytest.raises(ExperimentError):
            streaming_collector("yes", seed=1)
        with pytest.raises(ExperimentError):
            StreamingMetricsCollector(reservoir_size=-1)


class TestSerialization:
    def test_closed_batch_to_dict_is_byte_identical(self):
        """The tentpole's compatibility constraint: a plain collector's
        serialized payload must not move at all."""
        flows = _stream(seed=31).materialize()
        payload = json.dumps(_run_closed(flows).to_dict(), sort_keys=True)
        again = json.dumps(_run_closed(flows).to_dict(), sort_keys=True)
        assert payload == again
        assert "streaming" not in json.loads(payload)

    def test_streaming_round_trip_restores_metrics(self):
        flows = _stream(seed=32).materialize()
        collector = _run_closed(flows, streaming_collector(True, seed=32))
        restored = MetricsCollector.from_dict(collector.to_dict())
        assert isinstance(restored, StreamingMetricsCollector)
        assert len(restored) == len(collector)
        assert restored.completed_count() == collector.completed_count()
        assert restored.mean_fct() == pytest.approx(collector.mean_fct())
        assert restored.max_fct() == pytest.approx(collector.max_fct())
        assert restored.fct_percentile(95) == pytest.approx(
            collector.fct_percentile(95))
        assert restored.slowdown_percentile(99) == pytest.approx(
            collector.slowdown_percentile(99))
        # second round trip is stable
        assert restored.to_dict() == collector.to_dict()

    def test_base_collector_percentile_is_exact(self):
        flows = _stream(seed=33).materialize()
        exact = _run_closed(flows)
        from repro.utils.stats import percentile
        fcts = [r.fct for r in exact.completed_records()]
        assert exact.fct_percentile(50) == percentile(fcts, 50)


# -- engine equivalence -------------------------------------------------------------


class TestEngineEquivalence:
    def test_fluid_stream_matches_materialized_batch(self):
        stream = _stream(seed=41)
        flows = _stream(seed=41).materialize()
        closed = _run_closed(flows)
        streamed = _run_closed(stream, streaming_collector(True, seed=41))
        assert streamed.completed_count() == len(closed.completed_records())
        assert streamed.mean_fct() == pytest.approx(closed.mean_fct(),
                                                    rel=1e-6)
        assert streamed.max_fct() == pytest.approx(closed.max_fct(),
                                                   rel=1e-6)

    def test_packet_stream_matches_materialized_batch(self):
        stream = _stream(seed=42, duration=0.05)
        flows = _stream(seed=42, duration=0.05).materialize()
        deadline = stream.horizon
        closed = run_packet_level(_topo(), "RCP", flows,
                                  sim_deadline=deadline)
        streamed = run_packet_level(
            _topo(), "RCP", stream, sim_deadline=deadline,
            metrics=streaming_collector(True, seed=42),
        )
        assert streamed.completed_count() == len(closed.completed_records())
        assert streamed.mean_fct() == pytest.approx(closed.mean_fct(),
                                                    rel=1e-6)
        assert streamed.late_events == 0
        assert streamed.stats["net.stream_batches"] > 0

    def test_fluid_memory_is_flat_in_flow_count(self):
        """Direct O(1)-memory evidence at test scale: 4x the flows must
        cost well under 1.5x the peak traced bytes. Both cells sit past
        the bounded path caches' fill knee (PATH_CACHE_LIMIT entries), so
        any growth left is real per-flow retention."""
        from repro.bench.scenarios import build_stream_vl2

        def peak(n):
            topo, stream = build_stream_vl2(n)
            sim = FlowLevelSimulation(topo, make_model("RCP"),
                                      header_bytes=44,
                                      metrics=streaming_collector(True))
            tracemalloc.start()
            try:
                sim.run(stream, deadline=stream.horizon)
                return tracemalloc.get_traced_memory()[1]
            finally:
                tracemalloc.stop()

        small, big = peak(5_000), peak(20_000)
        assert big < 1.5 * small, (small, big)


# -- campaign wiring ----------------------------------------------------------------


def _stream_spec(engine="flow", seed=5, streaming=True, **options):
    if streaming:
        options.setdefault("streaming_metrics", True)
    return ScenarioSpec(
        protocol="RCP",
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("open_system", {
            "duration": 0.05, "rate_per_sec": 1000.0, "size_scale": 0.01,
        }),
        engine=engine,
        seed=seed,
        options=options,
    )


class TestCampaignWiring:
    def test_streaming_option_is_additive_to_spec_hash(self):
        """RPL004 guarantee: existing specs (no streaming_metrics key)
        hash exactly as before; adding the option changes the key."""
        plain = _stream_spec(streaming=False)
        with_option = _stream_spec(streaming=True)
        assert plain.key != with_option.key
        assert plain.key == _stream_spec(streaming=False).key

    @pytest.mark.parametrize("engine", ["flow", "packet"])
    def test_execute_spec_returns_streaming_collector(self, engine):
        from repro.campaign.engines import execute_spec

        collector = execute_spec(_stream_spec(engine=engine))
        assert isinstance(collector, StreamingMetricsCollector)
        assert collector.n_completed > 0

    def test_stream_horizon_becomes_default_deadline(self):
        """Satellite 2: without an explicit sim_deadline the spec runs to
        the stream's own horizon (arrival window + drain), not the
        engine default — the runner's wall-clock budget stays a backstop
        rather than the only terminator."""
        from repro.campaign.engines import execute_spec

        collector = execute_spec(_stream_spec(streaming=False))
        assert isinstance(collector, MetricsCollector)
        assert not isinstance(collector, StreamingMetricsCollector)
        assert collector.unfinished_count() == 0

    def test_runner_terminates_and_store_round_trips(self, tmp_path):
        """A streaming scenario through the CampaignRunner: terminates
        cleanly inside a generous wall-clock budget, caches, and restores
        from the store as a streaming collector."""
        spec = _stream_spec()
        store = ResultStore(tmp_path / "cache")
        runner = CampaignRunner(max_workers=0, store=store, timeout=120.0)
        result = runner.run([spec])
        assert not result.failures
        collector = store.get(spec)
        assert isinstance(collector, StreamingMetricsCollector)
        assert collector.n_completed > 0
        # cached: a second run hits the store, not the engine
        again = runner.run([spec])
        assert again.cached_count == 1

    def test_percentile_metrics_registered(self):
        from repro.experiments.reducers import collector_metric

        flows = _stream(seed=51).materialize()
        exact = _run_closed(flows)
        streamed = _run_closed(flows, streaming_collector(True, seed=51))
        for name in ("p50_fct", "p95_fct", "p99_fct"):
            metric = collector_metric(name)
            assert metric(streamed) == pytest.approx(metric(exact),
                                                     rel=0.25)
        frac = collector_metric("completion_fraction")
        assert frac(streamed) == pytest.approx(frac(exact))
