"""Tests for the five topology builders."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import (
    BCube,
    FatTree,
    Jellyfish,
    SingleBottleneck,
    SingleRootedTree,
)


class TestSingleBottleneck:
    def test_structure(self):
        topo = SingleBottleneck(5)
        assert len(topo.hosts) == 6  # 5 senders + receiver
        assert len(topo.switches) == 1
        assert topo.graph.number_of_edges() == 6

    def test_every_sender_two_hops_from_receiver(self):
        topo = SingleBottleneck(3)
        for sender in topo.senders:
            assert nx.shortest_path_length(topo.graph, sender, "recv") == 2

    def test_rejects_zero_senders(self):
        with pytest.raises(TopologyError):
            SingleBottleneck(0)


class TestSingleRootedTree:
    def test_paper_default_is_17_nodes(self):
        topo = SingleRootedTree()
        assert len(topo.hosts) == 12
        assert len(topo.switches) == 5  # 4 ToR + root
        assert topo.graph.number_of_nodes() == 17

    def test_rack_membership(self):
        topo = SingleRootedTree()
        assert topo.rack_of("h0") == 0
        assert topo.rack_of("h3") == 1
        assert topo.same_rack("h0", "h2")
        assert not topo.same_rack("h0", "h3")

    def test_rack_of_unknown_host(self):
        with pytest.raises(TopologyError):
            SingleRootedTree().rack_of("h99")

    def test_intra_rack_two_hops_inter_rack_four(self):
        topo = SingleRootedTree()
        assert nx.shortest_path_length(topo.graph, "h0", "h1") == 2
        assert nx.shortest_path_length(topo.graph, "h0", "h3") == 4


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_host_count(self, k):
        assert len(FatTree(k).hosts) == k ** 3 // 4

    def test_switch_count_k4(self):
        topo = FatTree(4)
        # (k/2)^2 core + k pods * (k/2 agg + k/2 edge)
        assert len(topo.switches) == 4 + 4 * 4

    def test_rejects_odd_k(self):
        with pytest.raises(TopologyError):
            FatTree(3)

    def test_multipath_between_pods(self):
        topo = FatTree(4)
        paths = list(nx.all_shortest_paths(topo.graph, "h0", "h15"))
        assert len(paths) == 4  # (k/2)^2 core paths

    def test_for_servers_picks_smallest_k(self):
        assert FatTree.for_servers(16).k == 4
        assert FatTree.for_servers(17).k == 6
        assert FatTree.for_servers(128).k == 8


class TestBCube:
    def test_bcube_2_3_dimensions(self):
        topo = BCube(2, 3)
        assert topo.n_servers == 16
        assert len(topo.hosts) == 16
        assert len(topo.switches) == 4 * 8  # (k+1) levels of n^k switches
        assert topo.nics_per_server == 4

    def test_every_host_has_k_plus_1_links(self):
        topo = BCube(2, 3)
        for host in topo.hosts:
            assert topo.degree_of(host) == 4

    def test_address_roundtrip(self):
        topo = BCube(2, 3)
        assert topo.address(0) == (0, 0, 0, 0)
        assert topo.address(15) == (1, 1, 1, 1)
        assert topo.address(5) == (0, 1, 0, 1)

    def test_parallel_paths_count(self):
        topo = BCube(2, 3)
        # addresses differing in all 4 digits -> 4 one-switch paths
        assert len(topo.parallel_paths(0, 15)) == 4
        assert len(topo.parallel_paths(0, 1)) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            BCube(1, 2)
        with pytest.raises(TopologyError):
            BCube(2, -1)


class TestJellyfish:
    def test_structure(self):
        topo = Jellyfish(n_switches=6, switch_ports=6)
        # default split: 4 network ports, 2 hosts per switch
        assert len(topo.hosts) == 12
        assert len(topo.switches) == 6

    def test_switch_fabric_is_regular(self):
        topo = Jellyfish(n_switches=8, switch_ports=6, seed=3)
        for s in topo.switches:
            fabric_degree = sum(
                1 for nb in topo.graph.neighbors(s)
                if topo.graph.nodes[nb]["kind"] == "switch"
            )
            assert fabric_degree == topo.network_ports

    def test_connected(self):
        topo = Jellyfish(n_switches=10, switch_ports=9, seed=1)
        assert nx.is_connected(topo.graph)

    def test_for_servers(self):
        topo = Jellyfish.for_servers(24)
        assert len(topo.hosts) >= 24

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            Jellyfish(n_switches=2)


class TestTopologyBase:
    def test_stats(self):
        stats = SingleRootedTree().stats()
        assert stats == {"hosts": 12, "switches": 5, "links": 16}

    def test_all_rates_positive(self):
        for topo in [SingleBottleneck(3), SingleRootedTree(), FatTree(4),
                     BCube(2, 2), Jellyfish(6, 6)]:
            topo.validate()
