"""Tests for the TCP Reno, RCP and D3 baselines."""

import pytest

from repro.net.network import Network
from repro.topology import SingleBottleneck, SingleRootedTree
from repro.transport import D3Stack, RcpStack, TcpStack
from repro.units import GBPS, KBYTE, MBYTE, MSEC
from repro.workload.flow import FlowSpec


def run(stack, flows, n_senders=None, deadline=2.0, loss=None):
    net = Network(SingleBottleneck(n_senders or len(flows)), stack)
    if loss:
        net.set_loss("sw0", "recv", loss, seed=1)
    net.launch(flows)
    net.run_until_quiet(deadline=deadline)
    return net


class TestTcp:
    def test_single_flow_completes(self):
        net = run(TcpStack(), [FlowSpec(fid=0, src="send0", dst="recv",
                                        size_bytes=200 * KBYTE)])
        assert net.metrics.record(0).completed

    def test_slow_start_costs_small_flows(self):
        """A tiny flow needs several RTTs under TCP (window growth)."""
        net = run(TcpStack(), [FlowSpec(fid=0, src="send0", dst="recv",
                                        size_bytes=30 * KBYTE)])
        fct = net.metrics.record(0).fct
        raw = 30 * KBYTE * 8 / (1 * GBPS)
        assert fct > 2.0 * raw  # well above line-rate time

    def test_recovers_from_loss(self):
        net = run(TcpStack(), [FlowSpec(fid=0, src="send0", dst="recv",
                                        size_bytes=500 * KBYTE)], loss=0.02)
        record = net.metrics.record(0)
        assert record.completed
        assert record.retransmissions > 0

    def test_fair_sharing_roughly_equal(self):
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE) for i in range(2)]
        net = run(TcpStack(), flows)
        fct = net.metrics.fct_by_fid()
        assert fct[0] == pytest.approx(fct[1], rel=0.3)

    def test_concurrent_flows_all_complete(self):
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=100 * KBYTE) for i in range(10)]
        net = run(TcpStack(), flows)
        assert len(net.metrics.completed_records()) == 10


class TestRcp:
    def test_single_flow_gets_line_rate(self):
        net = run(RcpStack(), [FlowSpec(fid=0, src="send0", dst="recv",
                                        size_bytes=500 * KBYTE)])
        fct = net.metrics.record(0).fct
        raw = 500 * KBYTE * 8 / (1 * GBPS)
        assert fct < raw * 1.25

    def test_fair_share_divides_evenly(self):
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=1 * MBYTE) for i in range(4)]
        net = run(RcpStack(), flows)
        fcts = list(net.metrics.fct_by_fid().values())
        # processor sharing: all equal-size flows finish together
        assert max(fcts) < min(fcts) * 1.3

    def test_short_flow_not_prioritized(self):
        """RCP is deadline/size-agnostic: short flows share rather than
        preempt (this is what Fig 1b criticizes)."""
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=1 * MBYTE),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE),
        ]
        net = run(RcpStack(), flows)
        fct = net.metrics.fct_by_fid()
        raw_short = 100 * KBYTE * 8 / (1 * GBPS)
        # the short flow runs at ~half rate: clearly above its solo time
        assert fct[1] > raw_short * 1.6

    def test_exact_flow_count_adapts(self):
        """After a flow terminates, the remaining one speeds up."""
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=2 * MBYTE),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=200 * KBYTE),
        ]
        net = run(RcpStack(), flows)
        fct = net.metrics.fct_by_fid()
        # flow 0 gets the full link after flow 1 leaves: finishes well
        # before the 2x it would take under permanent halving
        raw = 2 * MBYTE * 8 / (1 * GBPS)
        assert fct[0] < raw * 1.6

    def test_resilient_to_loss(self):
        net = run(RcpStack(), [FlowSpec(fid=0, src="send0", dst="recv",
                                        size_bytes=500 * KBYTE)], loss=0.02)
        assert net.metrics.record(0).completed


class TestD3:
    def test_deadline_flow_gets_required_rate(self):
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=500 * KBYTE,
                     deadline=10 * MSEC),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=500 * KBYTE),
        ]
        net = run(D3Stack(), flows)
        assert net.metrics.record(0).met_deadline

    def test_no_deadline_flows_fair_share(self):
        flows = [FlowSpec(fid=i, src=f"send{i}", dst="recv",
                          size_bytes=500 * KBYTE) for i in range(3)]
        net = run(D3Stack(), flows)
        fcts = list(net.metrics.fct_by_fid().values())
        assert max(fcts) < min(fcts) * 1.4

    def test_quenching_kills_expired_flow(self):
        flows = [
            # two flows want the whole link; one will miss its deadline
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=2 * MBYTE,
                     deadline=17 * MSEC),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=2 * MBYTE,
                     deadline=17 * MSEC),
        ]
        net = run(D3Stack(), flows, deadline=1.0)
        records = net.metrics.all_records()
        assert any(r.terminated for r in records)

    def test_first_come_first_reserved_blocks_later_urgent_flow(self):
        """The Fig 1 pathology: an early far-deadline flow's reservation
        starves a later tight-deadline flow."""
        flows = [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=1800 * KBYTE,
                     deadline=16 * MSEC, arrival=0.0),
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=1800 * KBYTE,
                     deadline=17 * MSEC, arrival=1 * MSEC),
        ]
        net = run(D3Stack(), flows, deadline=1.0)
        # capacity only fits ~one of them; D3 serves the earlier arrival
        met = [net.metrics.record(i).met_deadline for i in (0, 1)]
        assert met[0] and not met[1]


class TestBaselinesOnTree:
    @pytest.mark.parametrize("stack_factory", [TcpStack, RcpStack, D3Stack])
    def test_cross_rack_traffic_completes(self, stack_factory):
        net = Network(SingleRootedTree(), stack_factory())
        flows = [FlowSpec(fid=i, src=f"h{i}", dst=f"h{(i + 6) % 12}",
                          size_bytes=100 * KBYTE) for i in range(6)]
        net.launch(flows)
        net.run_until_quiet(deadline=2.0)
        assert len(net.metrics.completed_records()) == 6
