"""Tests for shared utilities: EWMA, RNG plumbing, sorted list, stats."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FlowListError, ProtocolError
from repro.utils.ewma import Ewma, RttEstimator
from repro.utils.rng import spawn_rng
from repro.utils.sortedlist import SortedFlowList
from repro.utils.stats import cdf_points, fraction_at_most, mean, percentile


class TestEwma:
    def test_first_sample_is_value(self):
        e = Ewma(alpha=0.5)
        assert e.update(10.0) == 10.0

    def test_decay(self):
        e = Ewma(alpha=0.5)
        e.update(10.0)
        assert e.update(20.0) == pytest.approx(15.0)

    def test_default_value(self):
        e = Ewma(default=42.0)
        assert e.value == 42.0
        assert e.value_or(0.0) == 42.0

    def test_default_replaced_by_first_sample(self):
        e = Ewma(alpha=0.5, default=42.0)
        assert e.update(10.0) == 10.0

    def test_default_is_fallback_not_prior(self):
        """Pinned contract: the configured default (how d3/rcp senders
        and the PDQ switch seed rtt_avg) carries zero weight once a real
        sample exists — only real samples shape the average."""
        seeded = Ewma(alpha=0.5, default=1_000.0)
        plain = Ewma(alpha=0.5)
        for sample in (10.0, 20.0, 14.0):
            seeded.update(sample)
            plain.update(sample)
        assert seeded.value == plain.value

    def test_samples_counts_only_real_observations(self):
        e = Ewma(default=42.0)
        assert e.samples == 0  # the fallback is not an observation
        e.update(10.0)
        assert e.samples == 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    @given(st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1))
    def test_property_stays_within_sample_range(self, samples):
        e = Ewma(alpha=0.3)
        for s in samples:
            e.update(s)
        assert min(samples) - 1e-9 <= e.value <= max(samples) + 1e-9


class TestRttEstimator:
    def test_rto_respects_min(self):
        est = RttEstimator(rto_min=0.01)
        est.update(1e-4)
        assert est.rto() == 0.01

    def test_rto_without_samples_is_max(self):
        est = RttEstimator(rto_min=0.001, rto_max=2.0)
        assert est.rto() == 2.0

    def test_srtt_converges(self):
        est = RttEstimator(rto_min=1e-6)
        for _ in range(100):
            est.update(0.002)
        assert est.srtt == pytest.approx(0.002, rel=1e-3)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().update(-1.0)


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a, b = spawn_rng(7), spawn_rng(7)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_streams_are_independent(self):
        a = spawn_rng(7, "one")
        b = spawn_rng(7, "two")
        assert [a.integers(1 << 30) for _ in range(4)] != [
            b.integers(1 << 30) for _ in range(4)
        ]

    def test_generator_passthrough(self):
        gen = spawn_rng(3)
        assert spawn_rng(gen) is gen


class TestSortedFlowList:
    def test_insert_keeps_order(self):
        lst = SortedFlowList(key=lambda x: x)
        for v in [5, 1, 3, 2, 4]:
            lst.insert(v)
        assert lst.as_list() == [1, 2, 3, 4, 5]

    def test_insert_returns_index(self):
        lst = SortedFlowList(key=lambda x: x)
        assert lst.insert(5) == 0
        assert lst.insert(1) == 0
        assert lst.insert(3) == 1

    def test_equal_keys_stable(self):
        lst = SortedFlowList(key=lambda pair: pair[0])
        lst.insert((1, "first"))
        lst.insert((1, "second"))
        assert lst.as_list() == [(1, "first"), (1, "second")]

    def test_remove(self):
        lst = SortedFlowList(key=lambda x: x)
        lst.insert(1)
        assert lst.remove(1) is True
        assert lst.remove(1) is False

    def test_least_critical(self):
        lst = SortedFlowList(key=lambda x: x)
        assert lst.least_critical() is None
        lst.insert(2)
        lst.insert(9)
        assert lst.least_critical() == 9
        assert lst.pop_least_critical() == 9

    def test_empty_pop_raises_flowlist_error(self):
        lst = SortedFlowList(key=lambda x: x)
        with pytest.raises(FlowListError, match="empty flow list"):
            lst.pop_least_critical()
        # a scheduler bug, so it must be catchable as a protocol error
        assert issubclass(FlowListError, ProtocolError)

    def test_pop_drains_then_raises(self):
        lst = SortedFlowList(key=lambda x: x)
        lst.insert(1)
        assert lst.pop_least_critical() == 1
        with pytest.raises(FlowListError):
            lst.pop_least_critical()

    def test_empty_least_critical_and_index_of(self):
        lst = SortedFlowList(key=lambda x: x)
        assert lst.least_critical() is None
        with pytest.raises(ValueError):
            lst.index_of(7)

    @given(st.lists(st.integers(), min_size=1, max_size=100))
    def test_property_matches_sorted(self, values):
        lst = SortedFlowList(key=lambda x: x)
        for v in values:
            lst.insert(v)
        assert lst.as_list() == sorted(values)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_percentile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([], 1) == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_property_percentile_within_range(self, values):
        p = percentile(values, 37.5)
        assert min(values) <= p <= max(values)
