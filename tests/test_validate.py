"""Tests for the cross-engine validation subsystem and the packet
engine's first-class path through the campaign runner."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    ResultStore,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    engine_kinds,
    run_scenario,
    use_runner,
)
from repro.campaign.cli import main as cli_main
from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector
from repro.units import GBPS, KBYTE
from repro.validate import (
    Tolerance,
    ValidationPair,
    compare_pair,
    default_pairs,
    edge_pairs,
    fig3_pairs,
    run_validation,
    select_pairs,
    write_report,
)
from repro.workload.flow import FlowSpec


def _single_flow_spec(protocol="RCP", engine="packet",
                      size_bytes=100 * KBYTE):
    return ScenarioSpec(
        protocol=protocol,
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("single_flow", {
            "src": "h1", "dst": "h0", "size_bytes": size_bytes,
        }),
        engine=engine,
        sim_deadline=2.0,
    )


def _empty_spec(engine="packet"):
    return ScenarioSpec(
        protocol="RCP",
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("empty"),
        engine=engine,
        sim_deadline=0.5,
    )


class TestEngineRegistry:
    def test_both_engines_registered(self):
        assert set(engine_kinds()) == {"packet", "flow"}

    def test_spec_validates_against_registry(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="unknown engine"):
            _single_flow_spec(engine="quantum")

    def test_custom_engine_is_first_class(self):
        """A registered engine immediately validates in specs and
        dispatches through execute_spec, like the builtin two."""
        from repro.campaign.engines import (
            _ENGINES,
            execute_spec,
            register_engine,
        )

        @register_engine("test.null")
        def _null_engine(spec, topology, flows, options):
            collector = MetricsCollector()
            for flow in flows:
                collector.register(flow)
            return collector

        try:
            spec = _single_flow_spec(engine="test.null")
            collector = execute_spec(spec)
            assert len(collector) == 1
            assert not collector.completed_records()
        finally:
            del _ENGINES["test.null"]


class TestPacketEngineThroughCampaign:
    def test_packet_spec_runs_and_serializes(self):
        collector = run_scenario(_single_flow_spec())
        assert len(collector) == 1
        restored = MetricsCollector.from_dict(
            json.loads(json.dumps(collector.to_dict()))
        )
        assert restored.to_dict() == collector.to_dict()

    def test_warm_store_executes_nothing(self, tmp_path):
        """Acceptance (satellite): a packet-engine cache hit returns
        executed_count == 0 on a warm ResultStore."""
        specs = [_single_flow_spec(p) for p in ("RCP", "PDQ(Full)")]
        store = ResultStore(tmp_path)
        cold = CampaignRunner(store=store).run(specs)
        assert cold.executed_count == 2
        warm = CampaignRunner(store=store).run(specs)
        assert warm.executed_count == 0
        assert warm.cached_count == 2
        for a, b in zip(cold.collectors(), warm.collectors(), strict=True):
            assert a.to_dict() == b.to_dict()

    def test_packet_parallel_matches_serial(self, tmp_path):
        specs = [_single_flow_spec(p) for p in ("RCP", "PDQ(Full)")]
        serial = CampaignRunner(max_workers=0).run(specs)
        parallel = CampaignRunner(max_workers=2).run(specs)
        for a, b in zip(serial.collectors(), parallel.collectors(), strict=True):
            assert a.to_dict() == b.to_dict()


class TestPairGrids:
    def test_fluid_twin_differs_only_in_engine(self):
        pair = fig3_pairs(quick=True)[0]
        assert pair.packet.engine == "packet"
        assert pair.fluid.engine == "flow"
        assert pair.fluid.key != pair.packet.key
        packet_dict = pair.packet.canonical()
        fluid_dict = pair.fluid.canonical()
        packet_dict.pop("engine")
        fluid_dict.pop("engine")
        assert packet_dict == fluid_dict

    def test_base_spec_must_be_packet(self):
        with pytest.raises(ValueError, match="must be packet"):
            ValidationPair(
                name="bad", family="edge",
                packet=_single_flow_spec(engine="flow"),
                tolerance=Tolerance(fct_rtol=0.1),
            )

    def test_default_grid_covers_required_families(self):
        pairs = default_pairs(quick=True)
        families = {p.family for p in pairs}
        assert families == {"edge", "fig3", "fig5", "fattree", "faults"}
        protocols = {p.protocol for p in pairs
                     if p.family in ("fig3", "fig5")}
        assert protocols == {"PDQ(Full)", "D3", "RCP"}
        fattree = [p for p in pairs if p.family == "fattree"]
        assert [p.protocol for p in fattree] == ["PDQ(Full)"]
        assert fattree[0].tolerance.fct_rtol == 0.6
        faults = [p for p in pairs if p.family == "faults"]
        assert [p.protocol for p in faults] == ["PDQ(Full)", "RCP"]
        assert all(p.packet.faults is not None for p in faults)

    def test_full_grid_is_larger(self):
        assert len(default_pairs(quick=False)) > len(default_pairs(quick=True))

    def test_select_by_family_and_substring(self):
        pairs = default_pairs(quick=True)
        assert all(p.family == "fig3" for p in select_pairs(pairs, ["fig3"]))
        d3 = select_pairs(pairs, ["D3"])
        assert d3 and all("D3" in p.name for p in d3)
        with pytest.raises(ExperimentError, match="no validation pairs"):
            select_pairs(pairs, ["fig99"])


def _collector(fcts, deadline=None):
    """Synthetic collector: flows h1->h0, completion at arrival+fct."""
    collector = MetricsCollector()
    for fid, fct in enumerate(fcts):
        spec = FlowSpec(fid=fid, src="h1", dst="h0",
                        size_bytes=10 * KBYTE, arrival=0.0,
                        deadline=deadline)
        collector.register(spec)
        collector.on_start(fid, 0.0)
        if fct is not None:
            collector.on_complete(fid, fct)
    return collector


class TestCompare:
    def _pair(self, **tol):
        tol.setdefault("fct_rtol", 0.5)
        return ValidationPair(
            name="t", family="edge", packet=_single_flow_spec(),
            tolerance=Tolerance(**tol),
        )

    def test_agreement_within_tolerance_passes(self):
        outcome = compare_pair(
            self._pair(), _collector([1.0, 1.2]), _collector([1.0, 1.0])
        )
        assert outcome.ok
        assert {c.name for c in outcome.checks} >= {
            "flow_count", "completed_fraction", "mean_fct",
        }

    def test_fct_gap_beyond_tolerance_fails(self):
        outcome = compare_pair(
            self._pair(fct_rtol=0.05),
            _collector([2.0]), _collector([1.0]),
        )
        assert not outcome.ok
        assert [c.name for c in outcome.failures()] == ["mean_fct"]

    def test_flow_count_mismatch_is_terminal(self):
        outcome = compare_pair(
            self._pair(), _collector([1.0, 1.0]), _collector([1.0])
        )
        assert not outcome.ok
        assert [c.name for c in outcome.checks] == ["flow_count"]

    def test_one_sided_completion_fails(self):
        outcome = compare_pair(
            self._pair(completion_atol=1.0),
            _collector([None]), _collector([1.0]),
        )
        assert not outcome.ok
        assert any(
            c.name == "mean_fct" and not c.ok for c in outcome.checks
        )

    def test_deadline_throughput_gap_fails(self):
        outcome = compare_pair(
            self._pair(fct_rtol=10.0, app_tput_atol=0.1,
                       completion_atol=1.0),
            _collector([5.0, 5.0], deadline=1.0),   # both miss
            _collector([0.5, 0.5], deadline=1.0),   # both meet
        )
        assert any(
            c.name == "application_throughput" and not c.ok
            for c in outcome.checks
        )

    def test_empty_pair_agrees(self):
        outcome = compare_pair(self._pair(), _collector([]), _collector([]))
        assert outcome.ok
        assert [c.name for c in outcome.checks] == ["flow_count"]


class TestRunValidation:
    def test_edge_family_passes_live(self):
        """Zero-flow and single-flow pairs agree across real engines."""
        report = run_validation(pairs=edge_pairs(quick=True))
        assert report.ok
        names = {o.name for o in report.outcomes}
        assert "edge/empty" in names
        empty = next(o for o in report.outcomes if o.name == "edge/empty")
        assert empty.packet_summary["n_flows"] == 0
        assert empty.fluid_summary["n_flows"] == 0

    def test_single_flow_fct_matches_analytic_bound(self):
        """Satellite: one uncontended flow must finish in about
        size/rate (+ a startup allowance) in *both* engines."""
        size = 100 * KBYTE
        wire_floor = size * 8 / (1 * GBPS)  # payload serialization alone
        for engine in ("packet", "flow"):
            collector = run_scenario(
                _single_flow_spec("RCP", engine=engine, size_bytes=size)
            )
            fct = collector.mean_fct()
            assert wire_floor < fct < 1.5 * wire_floor, (engine, fct)

    def test_violation_reported_not_raised(self):
        pair = ValidationPair(
            name="edge/too-strict", family="edge",
            packet=_single_flow_spec("D3"),
            tolerance=Tolerance(fct_rtol=1e-6),
        )
        report = run_validation(pairs=[pair])
        assert not report.ok
        assert report.n_failed == 1
        assert report.failures()[0].failures()[0].name == "mean_fct"

    def test_scenario_error_fails_pair_not_run(self):
        bad = ValidationPair(
            name="edge/bad", family="edge",
            packet=_single_flow_spec().with_(**{"workload.src": "nope"}),
            tolerance=Tolerance(fct_rtol=1.0),
        )
        good = edge_pairs(quick=True)[0]
        report = run_validation(pairs=[bad, good])
        assert not report.ok
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["edge/bad"].error is not None
        assert by_name[good.name].ok

    def test_validation_uses_ambient_runner_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        pairs = edge_pairs(quick=True)[:2]
        with use_runner(CampaignRunner(store=store)):
            run_validation(pairs=pairs)
        assert len(store) == 2 * len(pairs)
        executed = []
        with use_runner(CampaignRunner(
            store=store,
            progress=lambda o, d, t: executed.append(o)
            if not o.cached else None,
        )):
            report = run_validation(pairs=pairs)
        assert report.ok
        assert executed == []

    def test_report_roundtrip(self, tmp_path):
        report = run_validation(pairs=edge_pairs(quick=True)[:1])
        out = tmp_path / "report.json"
        payload = write_report(report, path=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == 1
        assert on_disk["suite"] == "cross_engine"
        assert on_disk["ok"] is True
        assert on_disk["n_pairs"] == 1
        pair = on_disk["pairs"][0]
        for field in ("name", "family", "protocol", "checks",
                      "packet", "fluid"):
            assert field in pair


class TestValidateCli:
    def test_list_and_dry_run(self, capsys):
        assert cli_main(["validate", "--quick", "--list"]) == 0
        assert "edge/empty" in capsys.readouterr().out
        assert cli_main(["validate", "--quick", "--dry-run"]) == 0
        assert "no scenarios executed" in capsys.readouterr().out

    def test_edge_family_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "VALIDATE.json"
        code = cli_main([
            "validate", "--quick", "--only", "edge/empty",
            "edge/single-RCP", "--no-cache", "--jobs", "0",
            "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["ok"] is True
        assert "cross-engine validation" in capsys.readouterr().out

    def test_unknown_family_fails_cleanly(self, capsys):
        assert cli_main(["validate", "--only", "fig99", "--list"]) == 1
        assert "no validation pairs" in capsys.readouterr().err
