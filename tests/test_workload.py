"""Tests for workload generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.topology import SingleRootedTree
from repro.units import KBYTE, MSEC
from repro.workload import (
    FlowSpec,
    aggregation_flows,
    edu1_flow_summaries,
    exponential_deadlines,
    pareto_sizes,
    poisson_arrivals,
    random_permutation_flows,
    simultaneous_arrivals,
    staggered_flows,
    stride_flows,
    uniform_sizes,
    vl2_flow_sizes,
)
from repro.workload.trace import TracePacket, flows_from_trace
from repro.workload.vl2 import elephant_byte_fraction, short_flow_fraction


class TestFlowSpec:
    def test_absolute_deadline(self):
        spec = FlowSpec(fid=0, src="a", dst="b", size_bytes=1, arrival=2.0,
                        deadline=3.0)
        assert spec.absolute_deadline == 5.0
        assert spec.has_deadline

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FlowSpec(fid=0, src="a", dst="b", size_bytes=0)
        with pytest.raises(WorkloadError):
            FlowSpec(fid=0, src="a", dst="a", size_bytes=1)
        with pytest.raises(WorkloadError):
            FlowSpec(fid=0, src="a", dst="b", size_bytes=1, deadline=0.0)

    def test_with_updates(self):
        spec = FlowSpec(fid=0, src="a", dst="b", size_bytes=10)
        clone = spec.with_(size_bytes=20)
        assert clone.size_bytes == 20
        assert spec.size_bytes == 10


class TestSizes:
    def test_uniform_mean(self):
        sizes = uniform_sizes(20_000, 100 * KBYTE, rng=1)
        assert sum(sizes) / len(sizes) == pytest.approx(100 * KBYTE, rel=0.02)

    def test_uniform_bounds_match_paper(self):
        # mean 100KB with 2KB floor -> U[2KB, 198KB] (§5.1)
        sizes = uniform_sizes(10_000, 100 * KBYTE, rng=2)
        assert min(sizes) >= 2 * KBYTE
        assert max(sizes) <= 198 * KBYTE

    def test_uniform_rejects_mean_below_min(self):
        with pytest.raises(WorkloadError):
            uniform_sizes(1, 1 * KBYTE)

    def test_pareto_heavy_tail(self):
        sizes = pareto_sizes(50_000, 100 * KBYTE, rng=3, tail_index=1.1)
        # heavy tail: the max dwarfs the median
        ordered = sorted(sizes)
        assert ordered[-1] > 20 * ordered[len(ordered) // 2]

    def test_pareto_needs_finite_mean(self):
        with pytest.raises(WorkloadError):
            pareto_sizes(1, 100 * KBYTE, tail_index=1.0)

    def test_deterministic_with_seed(self):
        assert uniform_sizes(10, 100 * KBYTE, rng=7) == uniform_sizes(
            10, 100 * KBYTE, rng=7
        )


class TestDeadlines:
    def test_floor_applied(self):
        deadlines = exponential_deadlines(10_000, mean=20 * MSEC,
                                          floor=3 * MSEC, rng=1)
        assert min(deadlines) >= 3 * MSEC

    def test_mean_roughly_right(self):
        deadlines = exponential_deadlines(50_000, mean=20 * MSEC, floor=0.0,
                                          rng=2)
        assert sum(deadlines) / len(deadlines) == pytest.approx(20 * MSEC,
                                                                rel=0.05)


class TestArrivals:
    def test_simultaneous(self):
        assert simultaneous_arrivals(3, at=1.0) == [1.0, 1.0, 1.0]

    def test_poisson_rate(self):
        arrivals = poisson_arrivals(1000.0, 10.0, rng=1)
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)
        assert all(0 <= a < 10.0 for a in arrivals)

    def test_poisson_sorted(self):
        arrivals = poisson_arrivals(500.0, 1.0, rng=2)
        assert arrivals == sorted(arrivals)


class TestPatterns:
    def test_aggregation_balances_senders(self):
        senders = [f"s{i}" for i in range(4)]
        flows = aggregation_flows(senders, "r", [1000] * 10, rng=1)
        counts = {}
        for flow in flows:
            counts[flow.src] = counts.get(flow.src, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1
        assert all(f.dst == "r" for f in flows)

    def test_stride_mapping(self):
        hosts = [f"h{i}" for i in range(6)]
        flows = stride_flows(hosts, 2, [1000] * 6)
        assert flows[0].src == "h0" and flows[0].dst == "h2"
        assert flows[5].src == "h5" and flows[5].dst == "h1"

    def test_stride_rejects_identity(self):
        hosts = [f"h{i}" for i in range(4)]
        with pytest.raises(WorkloadError):
            stride_flows(hosts, 4, [1000] * 4)

    def test_staggered_probability(self):
        tree = SingleRootedTree()
        flows = staggered_flows(tree, [1000] * 4000, p_local=0.7, rng=3)
        local = sum(1 for f in flows if tree.same_rack(f.src, f.dst))
        assert local / len(flows) == pytest.approx(0.7, abs=0.05)

    def test_permutation_is_one_to_one(self):
        hosts = [f"h{i}" for i in range(8)]
        flows = random_permutation_flows(hosts, [1000] * 8, rng=4)
        assert sorted(f.src for f in flows) == sorted(hosts)
        assert sorted(f.dst for f in flows) == sorted(hosts)
        assert all(f.src != f.dst for f in flows)

    def test_permutation_multiple_rounds(self):
        hosts = [f"h{i}" for i in range(4)]
        flows = random_permutation_flows(hosts, [1000] * 12, rng=5)
        assert len(flows) == 12
        for r in range(3):
            batch = flows[r * 4:(r + 1) * 4]
            assert sorted(f.dst for f in batch) == sorted(hosts)

    def test_permutation_rejects_partial_rounds(self):
        hosts = [f"h{i}" for i in range(4)]
        with pytest.raises(WorkloadError):
            random_permutation_flows(hosts, [1000] * 6)

    def test_unique_fids(self):
        senders = [f"s{i}" for i in range(4)]
        flows = aggregation_flows(senders, "r", [1000] * 10, fid_start=5)
        assert [f.fid for f in flows] == list(range(5, 15))


class TestVl2:
    def test_mice_dominate_flows(self):
        sizes = vl2_flow_sizes(20_000, rng=1)
        assert short_flow_fraction(sizes) > 0.6

    def test_elephants_dominate_bytes(self):
        sizes = vl2_flow_sizes(20_000, rng=2)
        assert elephant_byte_fraction(sizes) > 0.5

    def test_scale_shrinks_sizes(self):
        big = vl2_flow_sizes(1000, rng=3, scale=1.0)
        small = vl2_flow_sizes(1000, rng=3, scale=0.1)
        assert sum(small) < sum(big)


class TestTraceConversion:
    def test_groups_packets_into_flows(self):
        packets = [
            TracePacket(0.000, "a", "b", key=1, size_bytes=100),
            TracePacket(0.001, "a", "b", key=1, size_bytes=200),
            TracePacket(0.002, "a", "c", key=2, size_bytes=300),
        ]
        flows = flows_from_trace(packets)
        assert len(flows) == 2
        by_dst = {f.dst: f for f in flows}
        assert by_dst["b"].size_bytes == 300
        assert by_dst["c"].size_bytes == 300

    def test_idle_timeout_splits_flows(self):
        packets = [
            TracePacket(0.0, "a", "b", key=1, size_bytes=100),
            TracePacket(5.0, "a", "b", key=1, size_bytes=100),
        ]
        flows = flows_from_trace(packets, idle_timeout=1.0)
        assert len(flows) == 2

    def test_arrival_is_first_packet(self):
        packets = [
            TracePacket(0.7, "a", "b", key=1, size_bytes=100),
            TracePacket(0.8, "a", "b", key=1, size_bytes=100),
        ]
        flows = flows_from_trace(packets)
        assert flows[0].arrival == pytest.approx(0.7)

    def test_edu1_pipeline_produces_flows(self):
        hosts = [f"h{i}" for i in range(6)]
        flows = edu1_flow_summaries(hosts, duration=0.5,
                                    flows_per_second=200, rng=1)
        assert len(flows) > 20
        assert all(f.src != f.dst for f in flows)
        assert all(f.size_bytes > 0 for f in flows)
        fids = [f.fid for f in flows]
        assert len(set(fids)) == len(fids)

    @given(st.lists(
        st.tuples(st.floats(0, 1.0), st.integers(0, 3),
                  st.integers(100, 1500)),
        min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_property_bytes_conserved(self, raw):
        packets = [
            TracePacket(t, f"s{k}", f"d{k}", key=k, size_bytes=b)
            for t, k, b in raw
        ]
        flows = flows_from_trace(packets)
        assert sum(f.size_bytes for f in flows) == sum(p.size_bytes
                                                       for p in packets)
